#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analytics/batch.h"
#include "analytics/run_plan.h"
#include "analytics/task_kernel.h"
#include "analytics/uncompressed.h"
#include "common/hash.h"
#include "datagen/datagen.h"
#include "format/dag.h"
#include "format/serializer.h"
#include "gpu/platform.h"
#include "gtadoc/engine.h"
#include "sequitur/compressor.h"
#include "sequitur/tokenizer.h"
#include "tadoc/cpu_engine.h"
#include "tadoc/parallel_engine.h"
#include "tadoc/strategy.h"

namespace gtadoc {
namespace {

GTadocEngine::Options GpuOptions(std::vector<uint32_t> query = {}) {
  GTadocEngine::Options opt;
  opt.gpu = gpu::PascalPlatform().gpu;
  opt.host_workers = 1;  // deterministic
  opt.query_words = std::move(query);
  return opt;
}

CpuTadocOptions CpuOptions(std::vector<uint32_t> query = {}) {
  CpuTadocOptions opt;
  opt.cpu = gpu::PascalPlatform().cpu;
  opt.query_words = std::move(query);
  return opt;
}

struct Prepared {
  TokenizedCorpus tokens;
  Grammar grammar;
};

Prepared PrepareCorpus(uint32_t num_files, uint64_t total_tokens,
                       uint64_t seed) {
  DatasetSpec spec = DatasetA();
  spec.num_files = num_files;
  spec.total_tokens = total_tokens;
  spec.vocabulary = 200;
  spec.seed = seed;
  Prepared p;
  p.tokens = GenerateTokens(spec);
  auto g = CompressTokenStreams(p.tokens.file_tokens,
                                static_cast<uint32_t>(p.tokens.words.size()));
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  p.grammar = std::move(*g);
  return p;
}

// ------------------------------------------------------------- plan cache ---

// The serving contract: a repeat same-shape run hits the cache, performs
// zero planning (plan_seconds == 0, no relevance/bounds traversal charged),
// and produces bit-identical results and traversal charges.
TEST(PlanCacheTest, GpuHitSkipsPlanningAndKeepsResultsIdentical) {
  Prepared p = PrepareCorpus(24, 9000, 41);
  const std::vector<uint32_t> query = {1, 3, 9, 150};

  for (Task task : {Task::kWordCount, Task::kInvertedIndex,
                    Task::kKeywordSearch, Task::kSequenceCount,
                    Task::kTopKWords}) {
    SCOPED_TRACE(TaskName(task));
    auto engine = GTadocEngine::Create(&p.grammar, GpuOptions(query));
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ((*engine)->CachedPlan(task), nullptr);

    auto first = (*engine)->Run(task);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_EQ(first->timing.plan_cache_hits, 0u);
    ASSERT_NE((*engine)->CachedPlan(task), nullptr);

    auto second = (*engine)->Run(task);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->timing.plan_cache_hits, 1u);
    EXPECT_EQ(second->timing.plan_seconds, 0.0);
    EXPECT_TRUE(second->result.SameAs(first->result));
    // The executors are pure functions of the plan: traversal charges match
    // bit-for-bit (the ops counter is exact; the seconds only differ by the
    // summation order of the phase split), and the hit run's init is never
    // more expensive.
    EXPECT_NEAR(second->timing.traversal_seconds,
                first->timing.traversal_seconds, 1e-15);
    EXPECT_EQ(second->timing.traversal_ops, first->timing.traversal_ops);
    EXPECT_LE(second->timing.init_seconds, first->timing.init_seconds);
  }

  // Tasks whose plans embed a charged pass (sequence expansion lengths,
  // keyword relevance probes, forced bottom-up bounds) pay it on the miss —
  // so the hit visibly removes it.
  auto engine = GTadocEngine::Create(&p.grammar, GpuOptions(query));
  ASSERT_TRUE(engine.ok());
  for (Task task : {Task::kSequenceCount, Task::kKeywordSearch}) {
    auto run = (*engine)->Run(task);
    ASSERT_TRUE(run.ok());
    EXPECT_GT(run->timing.plan_seconds, 0.0) << TaskName(task);
  }
  auto forced = (*engine)->Run(Task::kInvertedIndex,
                               TraversalStrategy::kBottomUp);
  ASSERT_TRUE(forced.ok());
  EXPECT_GT(forced->timing.plan_seconds, 0.0);
}

TEST(PlanCacheTest, CachedPlanIsBitForBitTheFreshlyPlannedPlan) {
  Prepared p = PrepareCorpus(24, 9000, 42);
  const std::vector<uint32_t> query = {2, 5, 11};

  for (Task task : {Task::kWordCount, Task::kInvertedIndex,
                    Task::kKeywordSearch, Task::kSequenceCount,
                    Task::kTopKWords, Task::kTfIdf}) {
    SCOPED_TRACE(TaskName(task));
    auto a = GTadocEngine::Create(&p.grammar, GpuOptions(query));
    auto b = GTadocEngine::Create(&p.grammar, GpuOptions(query));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE((*a)->Run(task).ok());
    ASSERT_TRUE((*b)->Run(task).ok());
    // Two engines with private caches planned independently: same grammar,
    // same options, bit-for-bit the same plan.
    auto plan_a = (*a)->CachedPlan(task);
    auto plan_b = (*b)->CachedPlan(task);
    ASSERT_NE(plan_a, nullptr);
    ASSERT_NE(plan_b, nullptr);
    EXPECT_TRUE(PlanEquals(*plan_a, *plan_b));
    // A repeat run consumes the identical cached object.
    ASSERT_TRUE((*a)->Run(task).ok());
    EXPECT_EQ((*a)->CachedPlan(task).get(), plan_a.get());
  }

  // Shape-relevant options key the cache: a different query is a different
  // plan, not a stale hit.
  auto engine = GTadocEngine::Create(&p.grammar, GpuOptions(query));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Run(Task::kKeywordSearch).ok());
  auto narrow = GTadocEngine::Create(&p.grammar, GpuOptions({2}));
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE((*narrow)->Run(Task::kKeywordSearch).ok());
  ASSERT_NE((*engine)->CachedPlan(Task::kKeywordSearch), nullptr);
  ASSERT_NE((*narrow)->CachedPlan(Task::kKeywordSearch), nullptr);
  EXPECT_FALSE(PlanEquals(*(*engine)->CachedPlan(Task::kKeywordSearch),
                          *(*narrow)->CachedPlan(Task::kKeywordSearch)));
}

TEST(PlanCacheTest, CpuHitSkipsPlanningAndKeepsResultsIdentical) {
  Prepared p = PrepareCorpus(24, 9000, 43);
  const std::vector<uint32_t> query = {1, 7};
  auto engine = CpuTadocEngine::Create(&p.grammar, CpuOptions(query));
  ASSERT_TRUE(engine.ok());

  for (Task task : {Task::kWordCount, Task::kTermVector,
                    Task::kKeywordSearch}) {
    SCOPED_TRACE(TaskName(task));
    auto first = engine->Run(task);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first->timing.plan_cache_hits, 0u);
    auto second = engine->Run(task);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->timing.plan_cache_hits, 1u);
    EXPECT_EQ(second->timing.plan_seconds, 0.0);
    EXPECT_TRUE(second->result.SameAs(first->result));
    EXPECT_EQ(second->timing.traversal_ops, first->timing.traversal_ops);
  }
  EXPECT_NE(engine->CachedPlan(Task::kTermVector), nullptr);
  EXPECT_GT(engine->plan_cache()->hits(), 0u);
}

// The assembly lease: the planner reserves the SelectTopK heap slots inside
// the run's pool, so top-k assembly needs no scoped pool and no pool growth.
TEST(PlanCacheTest, TopKPlansReserveTheAssemblyLease) {
  Prepared p = PrepareCorpus(8, 6000, 44);
  GTadocEngine::Options opt = GpuOptions();
  opt.top_k = 5;
  auto engine = GTadocEngine::Create(&p.grammar, opt);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Run(Task::kTopKWords).ok());
  auto plan = (*engine)->CachedPlan(Task::kTopKWords);
  ASSERT_NE(plan, nullptr);
  // One (1 + 2k)-slot heap per file, placed after every traversal region.
  EXPECT_EQ(plan->assembly_slots, 8ull * (1 + 2 * 5));
  EXPECT_GE(plan->total_slots,
            plan->assembly_offset + plan->assembly_slots);
  // Non-selecting kernels reserve nothing.
  ASSERT_TRUE((*engine)->Run(Task::kWordCount).ok());
  EXPECT_EQ((*engine)->CachedPlan(Task::kWordCount)->assembly_slots, 0u);
}

TEST(PlanCacheTest, EvictsPastCapacityFifo) {
  PlanCache cache(2);
  for (int i = 0; i < 3; ++i) {
    auto plan = std::make_shared<RunPlan>();
    plan->key.task = i;
    cache.Put(std::move(plan));
  }
  EXPECT_EQ(cache.size(), 2u);
  PlanKey first;
  first.task = 0;
  EXPECT_EQ(cache.Peek(first), nullptr);  // oldest evicted
  PlanKey last;
  last.task = 2;
  EXPECT_NE(cache.Peek(last), nullptr);
}

// Warm batch serving: a second Run over the same corpus hits the batch's
// shared cache for every document — zero planning, identical results, and a
// strictly cheaper batch than the planning pass.
TEST(PlanCacheTest, WarmBatchRunsPayZeroPlanning) {
  DatasetSpec spec = DatasetA();
  spec.num_files = 32;
  spec.total_tokens = 12000;
  spec.vocabulary = 250;
  spec.seed = 45;
  Corpus corpus = GenerateCorpus(spec);
  auto part = PartitionAndCompress(corpus, 8);
  ASSERT_TRUE(part.ok());

  BatchEngine::Options bopt;
  bopt.engine = GpuOptions();
  auto batch = BatchEngine::Create(&*part, bopt);
  ASSERT_TRUE(batch.ok());

  auto cold = (*batch)->Run(Task::kSequenceCount);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->timing.plan_cache_hits, 0u);
  EXPECT_GT(cold->timing.plan_seconds, 0.0);

  auto warm = (*batch)->Run(Task::kSequenceCount);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->timing.plan_cache_hits, warm->documents.size());
  EXPECT_EQ(warm->timing.plan_seconds, 0.0);
  EXPECT_TRUE(warm->merged.SameAs(cold->merged));
  EXPECT_LT(warm->timing.total_seconds(), cold->timing.total_seconds());
}

// One PlanCache may serve CPU and GPU engines at once: keys carry the
// backend, so the GPU never executes a CPU-built plan (whose sequence plans
// carry no expansion lengths) and vice versa.
TEST(PlanCacheTest, SharedCacheKeysPlansPerBackend) {
  Prepared p = PrepareCorpus(8, 6000, 52);
  PlanCache shared;

  CpuTadocOptions copt = CpuOptions();
  copt.plan_cache = &shared;
  auto cpu = CpuTadocEngine::Create(&p.grammar, copt);
  ASSERT_TRUE(cpu.ok());
  auto cpu_run = cpu->Run(Task::kSequenceCount);
  ASSERT_TRUE(cpu_run.ok());

  GTadocEngine::Options gopt = GpuOptions();
  gopt.plan_cache = &shared;
  auto gpu = GTadocEngine::Create(&p.grammar, gopt);
  ASSERT_TRUE(gpu.ok());
  auto gpu_run = (*gpu)->Run(Task::kSequenceCount);
  ASSERT_TRUE(gpu_run.ok());
  // The GPU run planned its own (backend-keyed) entry — not a hit on the
  // CPU's expansion-length-free plan — and the results agree.
  EXPECT_EQ(gpu_run->timing.plan_cache_hits, 0u);
  EXPECT_TRUE(gpu_run->result.SameAs(cpu_run->result));
  EXPECT_EQ(shared.size(), 2u);
  ASSERT_NE((*gpu)->CachedPlan(Task::kSequenceCount), nullptr);
  EXPECT_FALSE((*gpu)->CachedPlan(Task::kSequenceCount)->exp_len.empty());
}

// ------------------------------------------------------------- rule Blooms ---

TEST(RuleBloomTest, CompressionBuildsSubtreeSupersetFilters) {
  Prepared p = PrepareCorpus(12, 8000, 46);
  ASSERT_TRUE(p.grammar.has_rule_blooms());
  auto dag = DagView::Build(p.grammar);
  ASSERT_TRUE(dag.ok());
  for (uint32_t r = 0; r < dag->num_rules(); ++r) {
    const uint64_t bloom = p.grammar.rule_blooms[r];
    // Every direct word of the rule is present in its filter...
    for (const RuleWordEntry& w : dag->words(r)) {
      const uint64_t mask = WordBloomMask(w.word);
      EXPECT_EQ(bloom & mask, mask) << "rule " << r << " word " << w.word;
    }
    // ...and every child's filter is contained in the parent's (subtree
    // coverage), which is what makes Bloom relevance a safe superset.
    for (const RuleChildEntry& e : dag->children(r)) {
      EXPECT_EQ(bloom & p.grammar.rule_blooms[e.child],
                p.grammar.rule_blooms[e.child])
          << "rule " << r << " child " << e.child;
    }
  }
}

TEST(RuleBloomTest, SerializerRoundTripsFiltersAndLoadsOldFormat) {
  Prepared p = PrepareCorpus(8, 6000, 47);
  ASSERT_TRUE(p.grammar.has_rule_blooms());

  // v2 round trip: filters survive byte-for-byte.
  const std::string v2 = SerializeGrammar(p.grammar);
  ASSERT_GE(v2.size(), 5u);
  EXPECT_EQ(static_cast<uint8_t>(v2[4]), 2u);  // version byte
  auto parsed = ParseGrammar(v2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->rule_blooms, p.grammar.rule_blooms);
  EXPECT_EQ(parsed->rules, p.grammar.rules);

  // v1 emission (no filters): byte-compatible with the old format and still
  // loadable — relevance then falls back to the traversal pass.
  const std::string v1 = SerializeGrammar(p.grammar,
                                          /*include_dictionary=*/true,
                                          /*include_blooms=*/false);
  EXPECT_EQ(static_cast<uint8_t>(v1[4]), 1u);
  auto old = ParseGrammar(v1);
  ASSERT_TRUE(old.ok()) << old.status().ToString();
  EXPECT_TRUE(old->rule_blooms.empty());
  EXPECT_EQ(old->rules, p.grammar.rules);

  // Both forms drive the engines to identical keyword results; only the
  // relevance path differs (persisted filters vs the genQueryReach pass).
  const std::vector<uint32_t> query = {3, 8, 100000};
  auto with = GTadocEngine::Create(&*parsed, GpuOptions(query));
  auto without = GTadocEngine::Create(&*old, GpuOptions(query));
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  auto with_run = (*with)->Run(Task::kKeywordSearch);
  auto without_run = (*without)->Run(Task::kKeywordSearch);
  ASSERT_TRUE(with_run.ok());
  ASSERT_TRUE(without_run.ok());
  EXPECT_TRUE(with_run->result.SameAs(without_run->result));
  EXPECT_TRUE((*with)->CachedPlan(Task::kKeywordSearch)->relevance_from_bloom);
  EXPECT_FALSE(
      (*without)->CachedPlan(Task::kKeywordSearch)->relevance_from_bloom);

  // Bloom relevance may only over-approximate: every rule the exact pass
  // keeps, the Bloom pass keeps too.
  const auto& bloom_rel = (*with)->CachedPlan(Task::kKeywordSearch)->relevant;
  const auto& exact_rel =
      (*without)->CachedPlan(Task::kKeywordSearch)->relevant;
  ASSERT_EQ(bloom_rel.size(), exact_rel.size());
  for (size_t r = 0; r < exact_rel.size(); ++r) {
    if (exact_rel[r] != 0) EXPECT_NE(bloom_rel[r], 0) << r;
  }
}

TEST(RuleBloomTest, V1ContainerWithBloomFlagIsCorruption) {
  Prepared p = PrepareCorpus(4, 2000, 48);
  std::string bytes = SerializeGrammar(p.grammar,
                                       /*include_dictionary=*/true,
                                       /*include_blooms=*/false);
  bytes[5] = static_cast<char>(bytes[5] | 0x02);  // claim Blooms in v1
  // The checksum also breaks, but even with it patched the version gate must
  // hold; either way this must be a clean Corruption, never a crash.
  EXPECT_FALSE(ParseGrammar(bytes).ok());
}

// A hostile-but-well-checksummed header must not drive allocations: a rule
// count (or Bloom section) larger than the input is rejected up front.
TEST(RuleBloomTest, FabricatedRuleCountsAreRejectedBeforeAllocation) {
  Prepared p = PrepareCorpus(4, 2000, 53);
  const std::string good = SerializeGrammar(p.grammar);

  auto rewrite_num_rules = [&](uint64_t fake_rules) {
    // Rebuild the container byte stream with a huge varint64 rule count and
    // a freshly valid checksum, mimicking an attacker-crafted file.
    std::string body(good.data(), good.size() - 8);
    // Header prefix: magic(4) + version(1) + flags(1) + two varint32s.
    size_t pos = 6;
    for (int i = 0; i < 2; ++i) {  // skip num_words, num_splitters
      while (static_cast<uint8_t>(body[pos]) & 0x80) ++pos;
      ++pos;
    }
    size_t rules_end = pos;
    while (static_cast<uint8_t>(body[rules_end]) & 0x80) ++rules_end;
    ++rules_end;
    std::string varint;
    uint64_t v = fake_rules;
    while (v >= 0x80) {
      varint.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    varint.push_back(static_cast<char>(v));
    body = body.substr(0, pos) + varint + body.substr(rules_end);
    const uint64_t checksum = Fnv1a64(body.data(), body.size());
    std::string tail(8, '\0');
    for (int i = 0; i < 8; ++i) {
      tail[i] = static_cast<char>((checksum >> (8 * i)) & 0xff);
    }
    return body + tail;
  };

  auto huge = ParseGrammar(rewrite_num_rules(1ull << 31));
  EXPECT_FALSE(huge.ok());
  EXPECT_TRUE(huge.status().IsCorruption()) << huge.status().ToString();
}

// ------------------------------------------------------------- multi-query ---

// One multi-query run must be bit-identical to N single-query runs, on every
// engine: GPU, CPU, GPU-uncompressed, sequential reference, and batch.
TEST(MultiQueryTest, MultiQueryEqualsSingleQueriesOnEveryEngine) {
  Prepared p = PrepareCorpus(12, 8000, 49);
  const std::vector<std::vector<uint32_t>> sets = {
      {1, 3}, {5}, {7, 9, 11, 13}, {100000}};

  // Single-query references (truth from the kernel's uncompressed loop).
  std::vector<KeywordSearchResult> truth;
  for (const auto& set : sets) {
    UncompressedAnalytics single(p.tokens.file_tokens, 3, set);
    truth.push_back(
        single.RunSequential(Task::kKeywordSearch).keyword_search);
  }

  // Sequential reference in multi-query mode.
  UncompressedAnalytics multi_ref(p.tokens.file_tokens, 3, {}, 10, sets);
  const AnalyticsResult seq = multi_ref.RunSequential(Task::kKeywordSearch);
  ASSERT_EQ(seq.keyword_multi.size(), sets.size());
  EXPECT_EQ(seq.keyword_multi, truth);

  // GPU engine.
  GTadocEngine::Options gopt = GpuOptions();
  gopt.query_sets = sets;
  auto gpu = GTadocEngine::Create(&p.grammar, gopt);
  ASSERT_TRUE(gpu.ok());
  for (TraversalStrategy strategy :
       {TraversalStrategy::kAuto, TraversalStrategy::kTopDown,
        TraversalStrategy::kBottomUp}) {
    auto run = (*gpu)->Run(Task::kKeywordSearch, strategy);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->result.keyword_multi, truth) << StrategyName(strategy);
  }

  // Single-query GPU runs agree entry-for-entry with the multi slots.
  for (size_t q = 0; q < sets.size(); ++q) {
    auto single = GTadocEngine::Create(&p.grammar, GpuOptions(sets[q]));
    ASSERT_TRUE(single.ok());
    auto run = (*single)->Run(Task::kKeywordSearch);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->result.keyword_search, truth[q]) << q;
  }

  // CPU engine.
  CpuTadocOptions copt = CpuOptions();
  copt.query_sets = sets;
  auto cpu = CpuTadocEngine::Create(&p.grammar, copt);
  ASSERT_TRUE(cpu.ok());
  auto cpu_run = cpu->Run(Task::kKeywordSearch);
  ASSERT_TRUE(cpu_run.ok());
  EXPECT_EQ(cpu_run->result.keyword_multi, truth);

  // GPU-uncompressed baseline.
  gpu::Device device(gpu::PascalPlatform().gpu, 1);
  auto unc = multi_ref.RunOnDevice(Task::kKeywordSearch, &device);
  ASSERT_TRUE(unc.ok()) << unc.status().ToString();
  EXPECT_EQ(unc->result.keyword_multi, truth);
}

TEST(MultiQueryTest, BatchMergesPerQueryResultsLikeSingleQueries) {
  DatasetSpec spec = DatasetA();
  spec.num_files = 12;
  spec.total_tokens = 8000;
  spec.vocabulary = 250;
  spec.seed = 50;
  Corpus corpus = GenerateCorpus(spec);
  auto part = PartitionAndCompress(corpus, 4);
  ASSERT_TRUE(part.ok());
  const std::vector<std::vector<uint32_t>> sets = {{2, 5}, {11}};

  BatchEngine::Options multi_opt;
  multi_opt.engine = GpuOptions();
  multi_opt.engine.query_sets = sets;
  auto multi = BatchEngine::Create(&*part, multi_opt);
  ASSERT_TRUE(multi.ok());
  auto multi_run = (*multi)->Run(Task::kKeywordSearch);
  ASSERT_TRUE(multi_run.ok()) << multi_run.status().ToString();
  ASSERT_EQ(multi_run->merged.keyword_multi.size(), sets.size());

  for (size_t q = 0; q < sets.size(); ++q) {
    BatchEngine::Options single_opt;
    single_opt.engine = GpuOptions(sets[q]);
    auto single = BatchEngine::Create(&*part, single_opt);
    ASSERT_TRUE(single.ok());
    auto single_run = (*single)->Run(Task::kKeywordSearch);
    ASSERT_TRUE(single_run.ok());
    EXPECT_EQ(multi_run->merged.keyword_multi[q],
              single_run->merged.keyword_search)
        << q;
  }
}

// ------------------------------------------------------------ phraseSearch ---

TEST(PhraseSearchTest, HandComputedTinyCorpus) {
  // file0: a b a b a   file1: b a b   file2: a a  (ids a=0 b=1)
  const std::vector<std::vector<uint32_t>> files = {
      {0, 1, 0, 1, 0}, {1, 0, 1}, {0, 0}};
  auto grammar = CompressTokenStreams(files, 2);
  ASSERT_TRUE(grammar.ok());

  struct Case {
    std::vector<uint32_t> phrase;
    PhraseSearchResult expected;
  };
  const std::vector<Case> cases = {
      // "a b": twice in file0 (positions 0, 2), once in file1.
      {{0, 1}, {{0, 2}, {1, 1}}},
      // "a b a": overlapping occurrences both count (windows 0 and 2).
      {{0, 1, 0}, {{0, 2}}},
      // "a a": only file2.
      {{0, 0}, {{2, 1}}},
      // "b b": nowhere.
      {{1, 1}, {}},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(testing::PrintToString(c.phrase));
    UncompressedAnalytics uncompressed(files, 3, c.phrase);
    const AnalyticsResult truth =
        uncompressed.RunSequential(Task::kPhraseSearch);
    EXPECT_EQ(truth.phrase_search, c.expected);

    auto gpu = GTadocEngine::Create(&*grammar, GpuOptions(c.phrase));
    ASSERT_TRUE(gpu.ok());
    auto gpu_run = (*gpu)->Run(Task::kPhraseSearch);
    ASSERT_TRUE(gpu_run.ok()) << gpu_run.status().ToString();
    EXPECT_EQ(gpu_run->result.phrase_search, c.expected);

    auto cpu = CpuTadocEngine::Create(&*grammar, CpuOptions(c.phrase));
    ASSERT_TRUE(cpu.ok());
    auto cpu_run = cpu->Run(Task::kPhraseSearch);
    ASSERT_TRUE(cpu_run.ok());
    EXPECT_EQ(cpu_run->result.phrase_search, c.expected);

    gpu::Device device(gpu::PascalPlatform().gpu, 1);
    auto unc = uncompressed.RunOnDevice(Task::kPhraseSearch, &device);
    ASSERT_TRUE(unc.ok());
    EXPECT_EQ(unc->result.phrase_search, c.expected);
  }

  // Multi-phrase: one traversal serves equal-length phrases; a set of a
  // different length than the window comes back empty.
  GTadocEngine::Options mopt = GpuOptions();
  mopt.query_sets = {{0, 1}, {0, 0}, {1, 1, 1}};
  auto multi = GTadocEngine::Create(&*grammar, mopt);
  ASSERT_TRUE(multi.ok());
  auto multi_run = (*multi)->Run(Task::kPhraseSearch);
  ASSERT_TRUE(multi_run.ok()) << multi_run.status().ToString();
  ASSERT_EQ(multi_run->result.keyword_multi.size(), 3u);
  EXPECT_EQ(multi_run->result.keyword_multi[0],
            (KeywordSearchResult{{0, 2}, {1, 1}}));
  EXPECT_EQ(multi_run->result.keyword_multi[1],
            (KeywordSearchResult{{2, 1}}));
  EXPECT_TRUE(multi_run->result.keyword_multi[2].empty());
}

TEST(PhraseSearchTest, AgreesAcrossEnginesOnRandomCorpus) {
  Prepared p = PrepareCorpus(8, 6000, 51);
  // A phrase guaranteed present: three consecutive tokens of file 0.
  ASSERT_GE(p.tokens.file_tokens[0].size(), 10u);
  const std::vector<uint32_t> phrase(p.tokens.file_tokens[0].begin() + 4,
                                     p.tokens.file_tokens[0].begin() + 7);

  UncompressedAnalytics uncompressed(p.tokens.file_tokens, 3, phrase);
  const AnalyticsResult truth =
      uncompressed.RunSequential(Task::kPhraseSearch);
  ASSERT_FALSE(truth.phrase_search.empty());

  auto gpu = GTadocEngine::Create(&p.grammar, GpuOptions(phrase));
  ASSERT_TRUE(gpu.ok());
  auto gpu_run = (*gpu)->Run(Task::kPhraseSearch);
  ASSERT_TRUE(gpu_run.ok()) << gpu_run.status().ToString();
  EXPECT_TRUE(gpu_run->result.SameAs(truth))
      << gpu_run->result.Digest() << " vs " << truth.Digest();

  auto cpu = CpuTadocEngine::Create(&p.grammar, CpuOptions(phrase));
  ASSERT_TRUE(cpu.ok());
  auto cpu_run = cpu->Run(Task::kPhraseSearch);
  ASSERT_TRUE(cpu_run.ok());
  EXPECT_TRUE(cpu_run->result.SameAs(truth));

  // The batch path merges per-document phrase hits identically.
  auto part = CorpusFromDocuments([&] {
    std::vector<Grammar> docs;
    for (size_t f = 0; f < p.tokens.file_tokens.size(); f += 2) {
      std::vector<std::vector<uint32_t>> pair_files(
          p.tokens.file_tokens.begin() + f,
          p.tokens.file_tokens.begin() +
              std::min(f + 2, p.tokens.file_tokens.size()));
      auto g = CompressTokenStreams(
          pair_files, static_cast<uint32_t>(p.tokens.words.size()));
      EXPECT_TRUE(g.ok());
      docs.push_back(std::move(*g));
    }
    return docs;
  }());
  ASSERT_TRUE(part.ok());
  BatchEngine::Options bopt;
  bopt.engine = GpuOptions(phrase);
  auto batch = BatchEngine::Create(&*part, bopt);
  ASSERT_TRUE(batch.ok());
  auto batch_run = (*batch)->Run(Task::kPhraseSearch);
  ASSERT_TRUE(batch_run.ok()) << batch_run.status().ToString();
  EXPECT_TRUE(batch_run->merged.SameAs(truth))
      << batch_run->merged.Digest() << " vs " << truth.Digest();
}

}  // namespace
}  // namespace gtadoc
