#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analytics/batch.h"
#include "analytics/task_kernel.h"
#include "analytics/uncompressed.h"
#include "datagen/datagen.h"
#include "format/dag.h"
#include "gpu/platform.h"
#include "gtadoc/engine.h"
#include "sequitur/compressor.h"
#include "sequitur/tokenizer.h"
#include "tadoc/cpu_engine.h"
#include "tadoc/parallel_engine.h"
#include "tadoc/strategy.h"

namespace gtadoc {
namespace {

/// The seven built-in tasks (the paper's six + keywordSearch).
std::vector<Task> BuiltinTasks() {
  std::vector<Task> tasks = AllTasks();
  tasks.push_back(Task::kKeywordSearch);
  return tasks;
}

GTadocEngine::Options GpuOptions(std::vector<uint32_t> query = {}) {
  GTadocEngine::Options opt;
  opt.gpu = gpu::PascalPlatform().gpu;
  opt.host_workers = 1;  // deterministic
  opt.query_words = std::move(query);
  return opt;
}

CpuTadocOptions CpuOptions(std::vector<uint32_t> query = {}) {
  CpuTadocOptions opt;
  opt.cpu = gpu::PascalPlatform().cpu;
  opt.query_words = std::move(query);
  return opt;
}

struct Prepared {
  TokenizedCorpus tokens;
  Grammar grammar;
};

Prepared PrepareCorpus(uint32_t num_files, uint64_t total_tokens,
                       uint64_t seed) {
  DatasetSpec spec = DatasetA();
  spec.num_files = num_files;
  spec.total_tokens = total_tokens;
  spec.vocabulary = 200;
  spec.seed = seed;
  Prepared p;
  p.tokens = GenerateTokens(spec);
  auto g = CompressTokenStreams(p.tokens.file_tokens,
                                static_cast<uint32_t>(p.tokens.words.size()));
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  p.grammar = std::move(*g);
  return p;
}

// -------------------------------------------------------------- registry ---

TEST(TaskRegistryTest, EveryBuiltinRoundTripsThroughGet) {
  for (Task task : BuiltinTasks()) {
    auto kernel = TaskRegistry::Get(task);
    ASSERT_TRUE(kernel.ok()) << static_cast<int>(task);
    EXPECT_EQ((*kernel)->task(), task);
    EXPECT_STREQ((*kernel)->name(), TaskName(task));
    EXPECT_NE(TaskRegistry::Find(task), nullptr);
  }
}

TEST(TaskRegistryTest, RegisteredTasksCoversBuiltins) {
  const std::vector<Task> registered = TaskRegistry::RegisteredTasks();
  for (Task task : BuiltinTasks()) {
    EXPECT_NE(std::find(registered.begin(), registered.end(), task),
              registered.end())
        << TaskName(task);
  }
}

TEST(TaskRegistryTest, UnknownIdReturnsCleanStatus) {
  const Task bogus = static_cast<Task>(912);
  auto kernel = TaskRegistry::Get(bogus);
  EXPECT_FALSE(kernel.ok());
  EXPECT_TRUE(kernel.status().IsNotFound()) << kernel.status().ToString();
  EXPECT_EQ(TaskRegistry::Find(bogus), nullptr);
  EXPECT_STREQ(TaskName(bogus), "?");
  EXPECT_FALSE(IsSequenceTask(bogus));
}

/// Minimal kernel used by the registration tests.
class NoopKernel : public TaskKernel {
 public:
  explicit NoopKernel(int id) : id_(id) {}
  Task task() const override { return static_cast<Task>(id_); }
  const char* name() const override { return "noop"; }
  TraversalShape shape() const override {
    return TraversalShape::kGlobalWeight;
  }
  void Merge(const AnalyticsResult&, uint32_t, AnalyticsResult*,
             uint64_t*) const override {}
  uint64_t ResultBytes(const AnalyticsResult&, uint32_t) const override {
    return 0;
  }
  bool Equal(const AnalyticsResult&, const AnalyticsResult&) const override {
    return true;
  }
  void DigestFold(const AnalyticsResult&, uint64_t*, size_t*) const override {}
  AnalyticsResult RunUncompressed(const std::vector<std::vector<uint32_t>>&,
                                  const TaskInput&,
                                  CpuCostMeter*) const override {
    return AnalyticsResult{};
  }

 private:
  int id_;
};

TEST(TaskRegistryTest, DuplicateAndNullRegistrationsFail) {
  TaskRegistry& registry = TaskRegistry::Instance();
  EXPECT_FALSE(registry.Register(nullptr).ok());
  ASSERT_TRUE(registry.Register(std::make_unique<NoopKernel>(901)).ok());
  EXPECT_NE(TaskRegistry::Find(static_cast<Task>(901)), nullptr);
  // Same id again: rejected, the first registration stays.
  EXPECT_FALSE(registry.Register(std::make_unique<NoopKernel>(901)).ok());
  // A built-in id cannot be shadowed either.
  EXPECT_FALSE(TaskRegistry::Instance()
                   .Register(std::make_unique<NoopKernel>(
                       static_cast<int>(Task::kWordCount)))
                   .ok());
}

TEST(TaskRegistryTest, EnginesRejectUnknownTasks) {
  const Task bogus = static_cast<Task>(913);
  Prepared p = PrepareCorpus(4, 3000, 3);

  auto gpu = GTadocEngine::Create(&p.grammar, GpuOptions());
  ASSERT_TRUE(gpu.ok());
  EXPECT_TRUE((*gpu)->Run(bogus).status().IsNotFound());

  auto cpu = CpuTadocEngine::Create(&p.grammar, CpuOptions());
  ASSERT_TRUE(cpu.ok());
  EXPECT_TRUE(cpu->Run(bogus).status().IsNotFound());

  UncompressedAnalytics uncompressed(p.tokens.file_tokens);
  gpu::Device device(gpu::PascalPlatform().gpu, 1);
  EXPECT_TRUE(uncompressed.RunOnDevice(bogus, &device).status().IsNotFound());
}

TEST(TaskKernelTest, ShapeMetadata) {
  EXPECT_EQ(TaskRegistry::Find(Task::kWordCount)->shape(),
            TraversalShape::kGlobalWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kSort)->shape(),
            TraversalShape::kGlobalWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kInvertedIndex)->shape(),
            TraversalShape::kPerFileWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kTermVector)->shape(),
            TraversalShape::kPerFileWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kSequenceCount)->shape(),
            TraversalShape::kSequence);
  EXPECT_EQ(TaskRegistry::Find(Task::kRankedInvertedIndex)->shape(),
            TraversalShape::kSequence);
  EXPECT_EQ(TaskRegistry::Find(Task::kKeywordSearch)->shape(),
            TraversalShape::kPerFileWeight);
  EXPECT_TRUE(IsSequenceTask(Task::kSequenceCount));
  EXPECT_FALSE(IsSequenceTask(Task::kKeywordSearch));
  EXPECT_STREQ(TraversalShapeName(TraversalShape::kPerFileWeight),
               "perFileWeight");
}

// The kernel's strategy hint is the single task->strategy mapping: the
// selector and both engines must agree with it.
TEST(TaskKernelTest, StrategyHintDrivesSelectorAndEngines) {
  Prepared few = PrepareCorpus(4, 3000, 5);
  Prepared many = PrepareCorpus(40, 8000, 6);
  auto few_dag = DagView::Build(few.grammar);
  auto many_dag = DagView::Build(many.grammar);
  ASSERT_TRUE(few_dag.ok());
  ASSERT_TRUE(many_dag.ok());

  for (Task task : {Task::kWordCount, Task::kSort}) {
    EXPECT_EQ(SelectStrategy(task, few.grammar, *few_dag),
              TraversalStrategy::kTopDown);
    EXPECT_EQ(SelectStrategy(task, many.grammar, *many_dag),
              TraversalStrategy::kTopDown);
  }
  for (Task task : {Task::kInvertedIndex, Task::kTermVector,
                    Task::kKeywordSearch, Task::kSequenceCount}) {
    EXPECT_EQ(SelectStrategy(task, few.grammar, *few_dag),
              TraversalStrategy::kTopDown)
        << TaskName(task);
    EXPECT_EQ(SelectStrategy(task, many.grammar, *many_dag),
              TraversalStrategy::kBottomUp)
        << TaskName(task);
  }

  // Engines read the same hint.
  auto gpu = GTadocEngine::Create(&many.grammar, GpuOptions());
  ASSERT_TRUE(gpu.ok());
  auto cpu = CpuTadocEngine::Create(&many.grammar, CpuOptions());
  ASSERT_TRUE(cpu.ok());
  for (Task task : BuiltinTasks()) {
    const TraversalStrategy hint = TaskRegistry::Find(task)->PreferredStrategy(
        many.grammar, *many_dag, TaskInput{});
    EXPECT_EQ((*gpu)->ChosenStrategy(task), hint) << TaskName(task);
    EXPECT_EQ(cpu->ChosenStrategy(task), hint) << TaskName(task);
  }
}

// ------------------------------------- cross-engine result consistency ---

class AllEnginesAgree : public testing::TestWithParam<int> {};

// The framework's core guarantee, table-driven over all seven built-in
// tasks on random corpora: GPU (both traversal directions), both CPU
// engines, and the GPU-uncompressed baseline all equal the kernel's own
// uncompressed reference loop.
TEST_P(AllEnginesAgree, OnRandomCorpora) {
  const Task task = BuiltinTasks()[GetParam()];
  struct Config {
    uint32_t num_files;
    uint64_t tokens;
    uint64_t seed;
  };
  for (const Config& cfg : {Config{3, 4000, 11}, Config{24, 9000, 12}}) {
    SCOPED_TRACE(testing::Message() << TaskName(task) << " files="
                                    << cfg.num_files);
    Prepared p = PrepareCorpus(cfg.num_files, cfg.tokens, cfg.seed);
    // A mixed query: common ids, a rare id, and one absent from the corpus.
    const std::vector<uint32_t> query = {1, 3, 9, 150, 100000};

    UncompressedAnalytics uncompressed(p.tokens.file_tokens, 3, query);
    const AnalyticsResult truth = uncompressed.RunSequential(task);

    auto gpu = GTadocEngine::Create(&p.grammar, GpuOptions(query));
    ASSERT_TRUE(gpu.ok()) << gpu.status().ToString();
    for (TraversalStrategy strategy :
         {TraversalStrategy::kAuto, TraversalStrategy::kTopDown,
          TraversalStrategy::kBottomUp}) {
      auto run = (*gpu)->Run(task, strategy);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_TRUE(run->result.SameAs(truth))
          << StrategyName(strategy) << ": " << run->result.Digest() << " vs "
          << truth.Digest();
    }

    auto cpu = CpuTadocEngine::Create(&p.grammar, CpuOptions(query));
    ASSERT_TRUE(cpu.ok());
    for (TraversalStrategy strategy :
         {TraversalStrategy::kTopDown, TraversalStrategy::kBottomUp}) {
      auto run = cpu->Run(task, strategy);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_TRUE(run->result.SameAs(truth))
          << StrategyName(strategy) << ": " << run->result.Digest() << " vs "
          << truth.Digest();
    }

    gpu::Device device(gpu::PascalPlatform().gpu, 1);
    auto unc_dev = uncompressed.RunOnDevice(task, &device);
    ASSERT_TRUE(unc_dev.ok()) << unc_dev.status().ToString();
    EXPECT_TRUE(unc_dev->result.SameAs(truth))
        << unc_dev->result.Digest() << " vs " << truth.Digest();
  }
}

INSTANTIATE_TEST_SUITE_P(SevenTasks, AllEnginesAgree, testing::Range(0, 7),
                         [](const auto& info) {
                           return std::string(
                               TaskName(BuiltinTasks()[info.param]));
                         });

// --------------------------------------------------------- keywordSearch ---

TEST(KeywordSearchTest, HandComputedTinyCorpus) {
  // file0: a b a c   file1: b a b   file2: d d  (ids a=0 b=1 c=2 d=3)
  const std::vector<std::vector<uint32_t>> files = {
      {0, 1, 0, 2}, {1, 0, 1}, {3, 3}};
  auto grammar = CompressTokenStreams(files, 4);
  ASSERT_TRUE(grammar.ok());
  const std::vector<uint32_t> query = {0, 2};  // a, c

  // a and c: file0 holds a,a,c = 3 hits; file1 holds a = 1 hit; file2 none.
  const KeywordSearchResult expected = {{0, 3}, {1, 1}};

  UncompressedAnalytics uncompressed(files, 3, query);
  const AnalyticsResult truth =
      uncompressed.RunSequential(Task::kKeywordSearch);
  EXPECT_EQ(truth.keyword_search, expected);

  auto gpu = GTadocEngine::Create(&*grammar, GpuOptions(query));
  ASSERT_TRUE(gpu.ok());
  auto gpu_run = (*gpu)->Run(Task::kKeywordSearch);
  ASSERT_TRUE(gpu_run.ok()) << gpu_run.status().ToString();
  EXPECT_EQ(gpu_run->result.keyword_search, expected);

  auto cpu = CpuTadocEngine::Create(&*grammar, CpuOptions(query));
  ASSERT_TRUE(cpu.ok());
  auto cpu_run = cpu->Run(Task::kKeywordSearch);
  ASSERT_TRUE(cpu_run.ok());
  EXPECT_EQ(cpu_run->result.keyword_search, expected);
}

TEST(KeywordSearchTest, EmptyAndAbsentQueriesReturnNoDocuments) {
  Prepared p = PrepareCorpus(6, 4000, 17);
  for (const std::vector<uint32_t>& query :
       {std::vector<uint32_t>{}, std::vector<uint32_t>{100000, 100001}}) {
    auto gpu = GTadocEngine::Create(&p.grammar, GpuOptions(query));
    ASSERT_TRUE(gpu.ok());
    auto run = (*gpu)->Run(Task::kKeywordSearch);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->result.keyword_search.empty());
  }
}

// The grammar exploit: a selective scan prunes rules without query words, so
// it does strictly less traversal work than the per-file task that must
// touch every word.
TEST(KeywordSearchTest, SelectiveScanDoesLessWorkThanFullFileTask) {
  Prepared p = PrepareCorpus(8, 20000, 19);
  const std::vector<uint32_t> query = {7};  // one word
  auto gpu = GTadocEngine::Create(&p.grammar, GpuOptions(query));
  ASSERT_TRUE(gpu.ok());
  auto keyword = (*gpu)->Run(Task::kKeywordSearch);
  ASSERT_TRUE(keyword.ok());
  auto inverted = (*gpu)->Run(Task::kInvertedIndex);
  ASSERT_TRUE(inverted.ok());
  EXPECT_LT(keyword->timing.traversal_ops, inverted->timing.traversal_ops);
}

TEST(KeywordSearchTest, RunsThroughBatchAndParallelEngines) {
  DatasetSpec spec = DatasetA();
  spec.num_files = 12;
  spec.total_tokens = 8000;
  spec.vocabulary = 250;
  spec.seed = 23;
  Corpus corpus = GenerateCorpus(spec);
  auto part = PartitionAndCompress(corpus, 4);
  ASSERT_TRUE(part.ok());
  const std::vector<uint32_t> query = {2, 5, 11};

  TokenizedCorpus tokens = Tokenize(corpus);
  UncompressedAnalytics uncompressed(tokens.file_tokens, 3, query);
  const AnalyticsResult truth =
      uncompressed.RunSequential(Task::kKeywordSearch);
  ASSERT_FALSE(truth.keyword_search.empty());

  BatchEngine::Options bopt;
  bopt.engine = GpuOptions(query);
  auto batch = BatchEngine::Create(&*part, bopt);
  ASSERT_TRUE(batch.ok());
  auto batch_run = (*batch)->Run(Task::kKeywordSearch);
  ASSERT_TRUE(batch_run.ok()) << batch_run.status().ToString();
  EXPECT_TRUE(batch_run->merged.SameAs(truth))
      << batch_run->merged.Digest() << " vs " << truth.Digest();

  auto parallel = ParallelTadocEngine::Create(&*part, CpuOptions(query));
  ASSERT_TRUE(parallel.ok());
  auto parallel_run = parallel->Run(Task::kKeywordSearch);
  ASSERT_TRUE(parallel_run.ok());
  EXPECT_TRUE(parallel_run->result.SameAs(truth))
      << parallel_run->result.Digest() << " vs " << truth.Digest();
}

}  // namespace
}  // namespace gtadoc
