#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analytics/batch.h"
#include "analytics/task_kernel.h"
#include "analytics/uncompressed.h"
#include "common/hash.h"
#include "datagen/datagen.h"
#include "format/dag.h"
#include "gpu/platform.h"
#include "gtadoc/engine.h"
#include "sequitur/compressor.h"
#include "sequitur/tokenizer.h"
#include "tadoc/cpu_engine.h"
#include "tadoc/parallel_engine.h"
#include "tadoc/strategy.h"

namespace gtadoc {
namespace {

/// The ten built-in tasks (the paper's six + keywordSearch + the two
/// StateLayout proof kernels + phraseSearch on the multi-query seam).
std::vector<Task> BuiltinTasks() {
  std::vector<Task> tasks = AllTasks();
  tasks.push_back(Task::kKeywordSearch);
  tasks.push_back(Task::kTopKWords);
  tasks.push_back(Task::kTfIdf);
  tasks.push_back(Task::kPhraseSearch);
  return tasks;
}

GTadocEngine::Options GpuOptions(std::vector<uint32_t> query = {}) {
  GTadocEngine::Options opt;
  opt.gpu = gpu::PascalPlatform().gpu;
  opt.host_workers = 1;  // deterministic
  opt.query_words = std::move(query);
  return opt;
}

CpuTadocOptions CpuOptions(std::vector<uint32_t> query = {}) {
  CpuTadocOptions opt;
  opt.cpu = gpu::PascalPlatform().cpu;
  opt.query_words = std::move(query);
  return opt;
}

struct Prepared {
  TokenizedCorpus tokens;
  Grammar grammar;
};

Prepared PrepareCorpus(uint32_t num_files, uint64_t total_tokens,
                       uint64_t seed) {
  DatasetSpec spec = DatasetA();
  spec.num_files = num_files;
  spec.total_tokens = total_tokens;
  spec.vocabulary = 200;
  spec.seed = seed;
  Prepared p;
  p.tokens = GenerateTokens(spec);
  auto g = CompressTokenStreams(p.tokens.file_tokens,
                                static_cast<uint32_t>(p.tokens.words.size()));
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  p.grammar = std::move(*g);
  return p;
}

// -------------------------------------------------------------- registry ---

TEST(TaskRegistryTest, EveryBuiltinRoundTripsThroughGet) {
  for (Task task : BuiltinTasks()) {
    auto kernel = TaskRegistry::Get(task);
    ASSERT_TRUE(kernel.ok()) << static_cast<int>(task);
    EXPECT_EQ((*kernel)->task(), task);
    EXPECT_STREQ((*kernel)->name(), TaskName(task));
    EXPECT_NE(TaskRegistry::Find(task), nullptr);
  }
}

TEST(TaskRegistryTest, RegisteredTasksCoversBuiltins) {
  const std::vector<Task> registered = TaskRegistry::RegisteredTasks();
  for (Task task : BuiltinTasks()) {
    EXPECT_NE(std::find(registered.begin(), registered.end(), task),
              registered.end())
        << TaskName(task);
  }
}

TEST(TaskRegistryTest, UnknownIdReturnsCleanStatus) {
  const Task bogus = static_cast<Task>(912);
  auto kernel = TaskRegistry::Get(bogus);
  EXPECT_FALSE(kernel.ok());
  EXPECT_TRUE(kernel.status().IsNotFound()) << kernel.status().ToString();
  EXPECT_EQ(TaskRegistry::Find(bogus), nullptr);
  EXPECT_STREQ(TaskName(bogus), "?");
  EXPECT_FALSE(IsSequenceTask(bogus));
}

/// Minimal kernel used by the registration tests.
class NoopKernel : public TaskKernel {
 public:
  explicit NoopKernel(int id) : id_(id) {}
  Task task() const override { return static_cast<Task>(id_); }
  const char* name() const override { return "noop"; }
  TraversalShape shape() const override {
    return TraversalShape::kGlobalWeight;
  }
  void Merge(const AnalyticsResult&, uint32_t, AnalyticsResult*,
             uint64_t*) const override {}
  uint64_t ResultBytes(const AnalyticsResult&, uint32_t) const override {
    return 0;
  }
  bool Equal(const AnalyticsResult&, const AnalyticsResult&) const override {
    return true;
  }
  void DigestFold(const AnalyticsResult&, uint64_t*, size_t*) const override {}
  AnalyticsResult RunUncompressed(const std::vector<std::vector<uint32_t>>&,
                                  const TaskInput&,
                                  CpuCostMeter*) const override {
    return AnalyticsResult{};
  }

 private:
  int id_;
};

TEST(TaskRegistryTest, DuplicateAndNullRegistrationsFail) {
  TaskRegistry& registry = TaskRegistry::Instance();
  EXPECT_FALSE(registry.Register(nullptr).ok());
  ASSERT_TRUE(registry.Register(std::make_unique<NoopKernel>(901)).ok());
  EXPECT_NE(TaskRegistry::Find(static_cast<Task>(901)), nullptr);
  // Same id again: rejected, the first registration stays.
  EXPECT_FALSE(registry.Register(std::make_unique<NoopKernel>(901)).ok());
  // A built-in id cannot be shadowed either.
  EXPECT_FALSE(TaskRegistry::Instance()
                   .Register(std::make_unique<NoopKernel>(
                       static_cast<int>(Task::kWordCount)))
                   .ok());
}

TEST(TaskRegistryTest, EnginesRejectUnknownTasks) {
  const Task bogus = static_cast<Task>(913);
  Prepared p = PrepareCorpus(4, 3000, 3);

  auto gpu = GTadocEngine::Create(&p.grammar, GpuOptions());
  ASSERT_TRUE(gpu.ok());
  EXPECT_TRUE((*gpu)->Run(bogus).status().IsNotFound());

  auto cpu = CpuTadocEngine::Create(&p.grammar, CpuOptions());
  ASSERT_TRUE(cpu.ok());
  EXPECT_TRUE(cpu->Run(bogus).status().IsNotFound());

  UncompressedAnalytics uncompressed(p.tokens.file_tokens);
  gpu::Device device(gpu::PascalPlatform().gpu, 1);
  EXPECT_TRUE(uncompressed.RunOnDevice(bogus, &device).status().IsNotFound());
}

TEST(TaskKernelTest, ShapeMetadata) {
  EXPECT_EQ(TaskRegistry::Find(Task::kWordCount)->shape(),
            TraversalShape::kGlobalWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kSort)->shape(),
            TraversalShape::kGlobalWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kInvertedIndex)->shape(),
            TraversalShape::kPerFileWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kTermVector)->shape(),
            TraversalShape::kPerFileWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kSequenceCount)->shape(),
            TraversalShape::kSequence);
  EXPECT_EQ(TaskRegistry::Find(Task::kRankedInvertedIndex)->shape(),
            TraversalShape::kSequence);
  EXPECT_EQ(TaskRegistry::Find(Task::kKeywordSearch)->shape(),
            TraversalShape::kPerFileWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kTopKWords)->shape(),
            TraversalShape::kPerFileWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kTfIdf)->shape(),
            TraversalShape::kPerFileWeight);
  EXPECT_EQ(TaskRegistry::Find(Task::kPhraseSearch)->shape(),
            TraversalShape::kSequence);
  EXPECT_TRUE(IsSequenceTask(Task::kSequenceCount));
  EXPECT_TRUE(IsSequenceTask(Task::kPhraseSearch));
  EXPECT_FALSE(IsSequenceTask(Task::kKeywordSearch));
  EXPECT_STREQ(TraversalShapeName(TraversalShape::kPerFileWeight),
               "perFileWeight");
}

// Every built-in kernel's canonical layout is consistent with its shape, and
// the layouts expose the geometry the drivers size pool regions from.
TEST(TaskKernelTest, CanonicalLayoutsMatchShapes) {
  StateDims dims;
  dims.num_files = 8;
  dims.num_words = 100;
  const TaskKernel* word_count = TaskRegistry::Find(Task::kWordCount);
  EXPECT_STREQ(word_count->Layout(TraversalStrategy::kTopDown).name(),
               "scalarWeight");
  EXPECT_STREQ(word_count->Layout(TraversalStrategy::kBottomUp).name(),
               "localWordTable");
  const TaskKernel* term_vector = TaskRegistry::Find(Task::kTermVector);
  EXPECT_STREQ(term_vector->Layout(TraversalStrategy::kTopDown).name(),
               "densePerFile");
  EXPECT_STREQ(TaskRegistry::Find(Task::kSequenceCount)
                   ->Layout(TraversalStrategy::kTopDown)
                   .name(),
               "headTail");
  // Geometry: dense per-file regions grow with the file count, local tables
  // with the content bound, scalar weights not at all.
  EXPECT_EQ(ScalarWeightLayout().SlotsForBound(dims, 1), 1u);
  EXPECT_EQ(DensePerFileLayout().SlotsForBound(dims, 8), 1u + 16u);
  EXPECT_GE(LocalWordTableLayout().SlotsForBound(dims, 10), 1u + 2u * 20u);
  dims.ngram_len = 4;
  EXPECT_EQ(HeadTailLayout().SlotsForBound(dims, 3), 1u + 6u);
}

// The distinct-key hint: selective kernels advertise query-sized tables,
// non-selective ones vocabulary-sized, sequence kernels none.
TEST(TaskKernelTest, ExpectedDistinctKeysTracksSelectivity) {
  StateDims dims;
  dims.num_files = 10;
  dims.num_words = 1000;
  TaskInput input;
  input.query_words = {1, 2, 3};
  EXPECT_EQ(TaskRegistry::Find(Task::kWordCount)
                ->ExpectedDistinctKeys(dims, input),
            1000u);
  EXPECT_EQ(TaskRegistry::Find(Task::kInvertedIndex)
                ->ExpectedDistinctKeys(dims, input),
            10000u);
  EXPECT_EQ(TaskRegistry::Find(Task::kKeywordSearch)
                ->ExpectedDistinctKeys(dims, input),
            30u);
  EXPECT_EQ(TaskRegistry::Find(Task::kSequenceCount)
                ->ExpectedDistinctKeys(dims, input),
            0u);
}

// The kernel's strategy hint is the single task->strategy mapping: the
// selector and both engines must agree with it.
TEST(TaskKernelTest, StrategyHintDrivesSelectorAndEngines) {
  Prepared few = PrepareCorpus(4, 3000, 5);
  Prepared many = PrepareCorpus(40, 8000, 6);
  auto few_dag = DagView::Build(few.grammar);
  auto many_dag = DagView::Build(many.grammar);
  ASSERT_TRUE(few_dag.ok());
  ASSERT_TRUE(many_dag.ok());

  for (Task task : {Task::kWordCount, Task::kSort}) {
    EXPECT_EQ(SelectStrategy(task, few.grammar, *few_dag),
              TraversalStrategy::kTopDown);
    EXPECT_EQ(SelectStrategy(task, many.grammar, *many_dag),
              TraversalStrategy::kTopDown);
  }
  for (Task task : {Task::kInvertedIndex, Task::kTermVector,
                    Task::kKeywordSearch, Task::kSequenceCount,
                    Task::kTopKWords, Task::kTfIdf}) {
    EXPECT_EQ(SelectStrategy(task, few.grammar, *few_dag),
              TraversalStrategy::kTopDown)
        << TaskName(task);
    EXPECT_EQ(SelectStrategy(task, many.grammar, *many_dag),
              TraversalStrategy::kBottomUp)
        << TaskName(task);
  }

  // Engines read the same hint.
  auto gpu = GTadocEngine::Create(&many.grammar, GpuOptions());
  ASSERT_TRUE(gpu.ok());
  auto cpu = CpuTadocEngine::Create(&many.grammar, CpuOptions());
  ASSERT_TRUE(cpu.ok());
  for (Task task : BuiltinTasks()) {
    const TraversalStrategy hint = TaskRegistry::Find(task)->PreferredStrategy(
        many.grammar, *many_dag, TaskInput{});
    EXPECT_EQ((*gpu)->ChosenStrategy(task), hint) << TaskName(task);
    EXPECT_EQ(cpu->ChosenStrategy(task), hint) << TaskName(task);
  }
}

// ------------------------------------- cross-engine result consistency ---

class AllEnginesAgree : public testing::TestWithParam<int> {};

// The framework's core guarantee, table-driven over all seven built-in
// tasks on random corpora: GPU (both traversal directions), both CPU
// engines, and the GPU-uncompressed baseline all equal the kernel's own
// uncompressed reference loop.
TEST_P(AllEnginesAgree, OnRandomCorpora) {
  const Task task = BuiltinTasks()[GetParam()];
  struct Config {
    uint32_t num_files;
    uint64_t tokens;
    uint64_t seed;
  };
  for (const Config& cfg : {Config{3, 4000, 11}, Config{24, 9000, 12}}) {
    SCOPED_TRACE(testing::Message() << TaskName(task) << " files="
                                    << cfg.num_files);
    Prepared p = PrepareCorpus(cfg.num_files, cfg.tokens, cfg.seed);
    // A mixed query: common ids, a rare id, and one absent from the corpus.
    const std::vector<uint32_t> query = {1, 3, 9, 150, 100000};

    UncompressedAnalytics uncompressed(p.tokens.file_tokens, 3, query);
    const AnalyticsResult truth = uncompressed.RunSequential(task);

    auto gpu = GTadocEngine::Create(&p.grammar, GpuOptions(query));
    ASSERT_TRUE(gpu.ok()) << gpu.status().ToString();
    for (TraversalStrategy strategy :
         {TraversalStrategy::kAuto, TraversalStrategy::kTopDown,
          TraversalStrategy::kBottomUp}) {
      auto run = (*gpu)->Run(task, strategy);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_TRUE(run->result.SameAs(truth))
          << StrategyName(strategy) << ": " << run->result.Digest() << " vs "
          << truth.Digest();
    }

    auto cpu = CpuTadocEngine::Create(&p.grammar, CpuOptions(query));
    ASSERT_TRUE(cpu.ok());
    for (TraversalStrategy strategy :
         {TraversalStrategy::kTopDown, TraversalStrategy::kBottomUp}) {
      auto run = cpu->Run(task, strategy);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_TRUE(run->result.SameAs(truth))
          << StrategyName(strategy) << ": " << run->result.Digest() << " vs "
          << truth.Digest();
    }

    gpu::Device device(gpu::PascalPlatform().gpu, 1);
    auto unc_dev = uncompressed.RunOnDevice(task, &device);
    ASSERT_TRUE(unc_dev.ok()) << unc_dev.status().ToString();
    EXPECT_TRUE(unc_dev->result.SameAs(truth))
        << unc_dev->result.Digest() << " vs " << truth.Digest();
  }
}

INSTANTIATE_TEST_SUITE_P(TenTasks, AllEnginesAgree, testing::Range(0, 10),
                         [](const auto& info) {
                           return std::string(
                               TaskName(BuiltinTasks()[info.param]));
                         });

// --------------------------------------------------------- keywordSearch ---

TEST(KeywordSearchTest, HandComputedTinyCorpus) {
  // file0: a b a c   file1: b a b   file2: d d  (ids a=0 b=1 c=2 d=3)
  const std::vector<std::vector<uint32_t>> files = {
      {0, 1, 0, 2}, {1, 0, 1}, {3, 3}};
  auto grammar = CompressTokenStreams(files, 4);
  ASSERT_TRUE(grammar.ok());
  const std::vector<uint32_t> query = {0, 2};  // a, c

  // a and c: file0 holds a,a,c = 3 hits; file1 holds a = 1 hit; file2 none.
  const KeywordSearchResult expected = {{0, 3}, {1, 1}};

  UncompressedAnalytics uncompressed(files, 3, query);
  const AnalyticsResult truth =
      uncompressed.RunSequential(Task::kKeywordSearch);
  EXPECT_EQ(truth.keyword_search, expected);

  auto gpu = GTadocEngine::Create(&*grammar, GpuOptions(query));
  ASSERT_TRUE(gpu.ok());
  auto gpu_run = (*gpu)->Run(Task::kKeywordSearch);
  ASSERT_TRUE(gpu_run.ok()) << gpu_run.status().ToString();
  EXPECT_EQ(gpu_run->result.keyword_search, expected);

  auto cpu = CpuTadocEngine::Create(&*grammar, CpuOptions(query));
  ASSERT_TRUE(cpu.ok());
  auto cpu_run = cpu->Run(Task::kKeywordSearch);
  ASSERT_TRUE(cpu_run.ok());
  EXPECT_EQ(cpu_run->result.keyword_search, expected);
}

TEST(KeywordSearchTest, EmptyAndAbsentQueriesReturnNoDocuments) {
  Prepared p = PrepareCorpus(6, 4000, 17);
  for (const std::vector<uint32_t>& query :
       {std::vector<uint32_t>{}, std::vector<uint32_t>{100000, 100001}}) {
    auto gpu = GTadocEngine::Create(&p.grammar, GpuOptions(query));
    ASSERT_TRUE(gpu.ok());
    auto run = (*gpu)->Run(Task::kKeywordSearch);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->result.keyword_search.empty());
  }
}

// The grammar exploit: a selective scan prunes rules without query words, so
// it does strictly less traversal work than the per-file task that must
// touch every word.
TEST(KeywordSearchTest, SelectiveScanDoesLessWorkThanFullFileTask) {
  Prepared p = PrepareCorpus(8, 20000, 19);
  const std::vector<uint32_t> query = {7};  // one word
  auto gpu = GTadocEngine::Create(&p.grammar, GpuOptions(query));
  ASSERT_TRUE(gpu.ok());
  auto keyword = (*gpu)->Run(Task::kKeywordSearch);
  ASSERT_TRUE(keyword.ok());
  auto inverted = (*gpu)->Run(Task::kInvertedIndex);
  ASSERT_TRUE(inverted.ok());
  EXPECT_LT(keyword->timing.traversal_ops, inverted->timing.traversal_ops);
}

// ------------------------------------------- topKWords / tfIdf (layouts) ---

TEST(TopKWordsTest, HandComputedTinyCorpus) {
  // file0: a b a c   file1: b a b   file2: d d  (ids a=0 b=1 c=2 d=3)
  const std::vector<std::vector<uint32_t>> files = {
      {0, 1, 0, 2}, {1, 0, 1}, {3, 3}};
  auto grammar = CompressTokenStreams(files, 4);
  ASSERT_TRUE(grammar.ok());

  GTadocEngine::Options gopt = GpuOptions();
  gopt.top_k = 1;
  auto gpu = GTadocEngine::Create(&*grammar, gopt);
  ASSERT_TRUE(gpu.ok());
  auto run = (*gpu)->Run(Task::kTopKWords);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const TopKWordsResult expected = {{{0, 2}}, {{1, 2}}, {{3, 2}}};
  EXPECT_EQ(run->result.top_k_words, expected);

  // k larger than any vocabulary degrades to the full termVector ordering.
  gopt.top_k = 100;
  auto gpu_all = GTadocEngine::Create(&*grammar, gopt);
  ASSERT_TRUE(gpu_all.ok());
  auto run_all = (*gpu_all)->Run(Task::kTopKWords);
  ASSERT_TRUE(run_all.ok());
  EXPECT_EQ(run_all->result.top_k_words[0].size(), 3u);  // a, c, b by rank
  EXPECT_EQ(run_all->result.top_k_words[0][0], (std::pair<uint32_t, uint64_t>{
                                                   0, 2}));

  // k = 0 selects nothing but keeps the per-file structure.
  gopt.top_k = 0;
  auto gpu_none = GTadocEngine::Create(&*grammar, gopt);
  ASSERT_TRUE(gpu_none.ok());
  auto run_none = (*gpu_none)->Run(Task::kTopKWords);
  ASSERT_TRUE(run_none.ok());
  ASSERT_EQ(run_none->result.top_k_words.size(), 3u);
  for (const auto& vec : run_none->result.top_k_words) {
    EXPECT_TRUE(vec.empty());
  }
}

TEST(TfIdfTest, RareWordsOutrankFrequentOnes) {
  // file0: a b a c   file1: b a b   file2: d d. df: a=2 b=2 c=1 d=1, N=3.
  const std::vector<std::vector<uint32_t>> files = {
      {0, 1, 0, 2}, {1, 0, 1}, {3, 3}};
  auto grammar = CompressTokenStreams(files, 4);
  ASSERT_TRUE(grammar.ok());

  auto gpu = GTadocEngine::Create(&*grammar, GpuOptions());
  ASSERT_TRUE(gpu.ok());
  auto run = (*gpu)->Run(Task::kTfIdf);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const TfIdfResult& tfidf = run->result.tf_idf;
  ASSERT_EQ(tfidf.size(), 3u);
  // file0 holds a(tf 2, df 2), b(tf 1, df 2), c(tf 1, df 1): the rare c
  // outranks the frequent a because idf(3/1) > 2 * idf(3/2).
  ASSERT_EQ(tfidf[0].size(), 3u);
  EXPECT_EQ(tfidf[0][0].word, 2u);
  EXPECT_EQ(tfidf[0][0].tf, 1u);
  EXPECT_EQ(tfidf[0][1].word, 0u);
  EXPECT_EQ(tfidf[0][1].tf, 2u);
  EXPECT_EQ(tfidf[0][2].word, 1u);
  EXPECT_GT(tfidf[0][0].score, tfidf[0][1].score);

  // The reference loop agrees bit-for-bit (integer fixed-point idf).
  UncompressedAnalytics uncompressed(files);
  EXPECT_TRUE(run->result.SameAs(uncompressed.RunSequential(Task::kTfIdf)));
}

TEST(StateLayoutKernelsTest, RunThroughBatchAndParallelEngines) {
  DatasetSpec spec = DatasetA();
  spec.num_files = 12;
  spec.total_tokens = 8000;
  spec.vocabulary = 250;
  spec.seed = 29;
  Corpus corpus = GenerateCorpus(spec);
  auto part = PartitionAndCompress(corpus, 4);
  ASSERT_TRUE(part.ok());
  TokenizedCorpus tokens = Tokenize(corpus);
  UncompressedAnalytics uncompressed(tokens.file_tokens);

  for (Task task : {Task::kTopKWords, Task::kTfIdf}) {
    SCOPED_TRACE(TaskName(task));
    const AnalyticsResult truth = uncompressed.RunSequential(task);

    BatchEngine::Options bopt;
    bopt.engine = GpuOptions();
    auto batch = BatchEngine::Create(&*part, bopt);
    ASSERT_TRUE(batch.ok());
    auto batch_run = (*batch)->Run(task);
    ASSERT_TRUE(batch_run.ok()) << batch_run.status().ToString();
    EXPECT_TRUE(batch_run->merged.SameAs(truth))
        << batch_run->merged.Digest() << " vs " << truth.Digest();

    auto parallel = ParallelTadocEngine::Create(&*part, CpuOptions());
    ASSERT_TRUE(parallel.ok());
    auto parallel_run = parallel->Run(task);
    ASSERT_TRUE(parallel_run.ok());
    EXPECT_TRUE(parallel_run->result.SameAs(truth))
        << parallel_run->result.Digest() << " vs " << truth.Digest();
  }
}

// ----------------------------------------- custom out-of-tree StateLayout ---

/// A custom accumulator shape no canonical layout provides: one presence bit
/// per file (1/128th of the dense-per-file footprint), merged with bitwise
/// OR. Registered from this test, mirroring examples/custom_task.cpp.
class FilePresenceLayout : public StateLayout {
 public:
  const char* name() const override { return "filePresence"; }

  uint64_t SlotsForBound(const StateDims& dims, uint64_t bound) const override {
    (void)bound;
    return (dims.num_files + 63) / 64;
  }
  uint64_t PropagatedBytesPerRule(const StateDims& dims) const override {
    return 8ull * ((dims.num_files + 63) / 64);
  }

  void Absorb(StateView s, uint32_t file, uint64_t delta,
              StateOps& ops) const override {
    (void)delta;  // presence only — weights are deliberately dropped
    ops.Atomic(1);
    s.atomic_at(file / 64).fetch_or(1ull << (file % 64),
                                    std::memory_order_relaxed);
  }

  uint64_t EntryCount(StateView s) const override {
    uint64_t bits = 0;
    for (uint64_t i = 0; i < s.slots(); ++i) {
      uint64_t v = s.at(i);
      while (v != 0) {
        v &= v - 1;
        ++bits;
      }
    }
    return bits;
  }
  uint64_t ReadableSlots(StateView s) const override { return s.slots() * 64; }
  bool ReadSlot(StateView s, uint64_t slot, uint32_t* key,
                uint64_t* value) const override {
    if ((s.at(slot / 64) & (1ull << (slot % 64))) == 0) return false;
    *key = static_cast<uint32_t>(slot);
    *value = 1;
    return true;
  }
};

constexpr Task kDocFrequency = static_cast<Task>(950);

/// word -> number of files containing it. Counts need only presence, so the
/// kernel overrides the canonical dense-per-file top-down layout with the
/// 64x-smaller presence bitmap; bottom-up keeps the canonical local tables.
/// The unmodified drivers run both.
class DocFrequencyKernel : public TaskKernel {
 public:
  Task task() const override { return kDocFrequency; }
  const char* name() const override { return "docFrequency"; }
  TraversalShape shape() const override {
    return TraversalShape::kPerFileWeight;
  }

  const StateLayout& Layout(TraversalStrategy strategy) const override {
    static const FilePresenceLayout* presence = new FilePresenceLayout();
    if (strategy == TraversalStrategy::kBottomUp) {
      return LocalWordTableLayout();
    }
    return *presence;
  }

  void AssembleFileWord(const TaskInput& input, uint32_t num_files,
                        const std::vector<FileWordCount>& counts,
                        AssemblyOps* ops, AnalyticsResult* out) const override {
    (void)input;
    (void)num_files;
    // One triple per (file, word) with any positive count: df is the number
    // of triples a word appears in.
    for (const FileWordCount& e : counts) ++out->word_count[e.word];
    ops->ChargeUpdates(counts.size());
  }

  void Merge(const AnalyticsResult& doc, uint32_t file_base,
             AnalyticsResult* acc, uint64_t* merge_ops) const override {
    (void)file_base;  // files are disjoint across documents: df sums
    for (const auto& [w, c] : doc.word_count) {
      acc->word_count[w] += c;
      ++*merge_ops;
    }
  }

  uint64_t ResultBytes(const AnalyticsResult& r,
                       uint32_t ngram_len) const override {
    (void)ngram_len;
    return r.word_count.size() * 12;
  }

  bool Equal(const AnalyticsResult& a,
             const AnalyticsResult& b) const override {
    return a.word_count == b.word_count;
  }

  void DigestFold(const AnalyticsResult& r, uint64_t* h,
                  size_t* entries) const override {
    for (const auto& [w, c] : r.word_count) {
      *h = HashCombine(HashCombine(*h, w), c);
      ++*entries;
    }
  }

  AnalyticsResult RunUncompressed(
      const std::vector<std::vector<uint32_t>>& files, const TaskInput& input,
      CpuCostMeter* meter) const override {
    (void)input;
    AnalyticsResult out;
    out.task = kDocFrequency;
    for (const auto& file : files) {
      std::vector<uint32_t> seen(file.begin(), file.end());
      std::sort(seen.begin(), seen.end());
      seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
      for (uint32_t w : seen) ++out.word_count[w];
      if (meter != nullptr) meter->Charge(file.size() * 2);
    }
    return out;
  }
};

// A layout registered from outside the tree drives the unmodified drivers:
// both engines, both traversal directions, identical results — and the
// presence bitmap's footprint is a fraction of the canonical dense state.
TEST(StateLayoutKernelsTest, CustomLayoutRunsThroughUnmodifiedDrivers) {
  static const bool registered = [] {
    return TaskRegistry::Instance()
        .Register(std::make_unique<DocFrequencyKernel>())
        .ok();
  }();
  ASSERT_TRUE(registered);

  Prepared p = PrepareCorpus(24, 9000, 31);
  UncompressedAnalytics uncompressed(p.tokens.file_tokens);
  const AnalyticsResult truth = uncompressed.RunSequential(kDocFrequency);
  ASSERT_FALSE(truth.word_count.empty());

  auto gpu = GTadocEngine::Create(&p.grammar, GpuOptions());
  ASSERT_TRUE(gpu.ok());
  for (TraversalStrategy strategy :
       {TraversalStrategy::kTopDown, TraversalStrategy::kBottomUp}) {
    auto run = (*gpu)->Run(kDocFrequency, strategy);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->result.SameAs(truth))
        << StrategyName(strategy) << ": " << run->result.Digest() << " vs "
        << truth.Digest();
  }
  auto cpu = CpuTadocEngine::Create(&p.grammar, CpuOptions());
  ASSERT_TRUE(cpu.ok());
  for (TraversalStrategy strategy :
       {TraversalStrategy::kTopDown, TraversalStrategy::kBottomUp}) {
    auto run = cpu->Run(kDocFrequency, strategy);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run->result.SameAs(truth)) << StrategyName(strategy);
  }

  // The custom layout is what the drivers size regions from: a presence
  // bitmap for 24 files is one slot against the dense layout's 49.
  StateDims dims;
  dims.num_files = 24;
  const DocFrequencyKernel kernel;
  EXPECT_EQ(kernel.Layout(TraversalStrategy::kTopDown)
                .SlotsForBound(dims, dims.num_files),
            1u);
  EXPECT_EQ(DensePerFileLayout().SlotsForBound(dims, dims.num_files), 49u);
}

TEST(KeywordSearchTest, RunsThroughBatchAndParallelEngines) {
  DatasetSpec spec = DatasetA();
  spec.num_files = 12;
  spec.total_tokens = 8000;
  spec.vocabulary = 250;
  spec.seed = 23;
  Corpus corpus = GenerateCorpus(spec);
  auto part = PartitionAndCompress(corpus, 4);
  ASSERT_TRUE(part.ok());
  const std::vector<uint32_t> query = {2, 5, 11};

  TokenizedCorpus tokens = Tokenize(corpus);
  UncompressedAnalytics uncompressed(tokens.file_tokens, 3, query);
  const AnalyticsResult truth =
      uncompressed.RunSequential(Task::kKeywordSearch);
  ASSERT_FALSE(truth.keyword_search.empty());

  BatchEngine::Options bopt;
  bopt.engine = GpuOptions(query);
  auto batch = BatchEngine::Create(&*part, bopt);
  ASSERT_TRUE(batch.ok());
  auto batch_run = (*batch)->Run(Task::kKeywordSearch);
  ASSERT_TRUE(batch_run.ok()) << batch_run.status().ToString();
  EXPECT_TRUE(batch_run->merged.SameAs(truth))
      << batch_run->merged.Digest() << " vs " << truth.Digest();

  auto parallel = ParallelTadocEngine::Create(&*part, CpuOptions(query));
  ASSERT_TRUE(parallel.ok());
  auto parallel_run = parallel->Run(Task::kKeywordSearch);
  ASSERT_TRUE(parallel_run.ok());
  EXPECT_TRUE(parallel_run->result.SameAs(truth))
      << parallel_run->result.Digest() << " vs " << truth.Digest();
}

}  // namespace
}  // namespace gtadoc
