#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gpu/device.h"
#include "gpu/hash_table.h"
#include "gpu/memory_pool.h"
#include "gpu/ngram_table.h"
#include "gpu/platform.h"
#include "gpu/primitives.h"
#include "gpu/round_loop.h"

namespace gtadoc {
namespace gpu {
namespace {

GpuSpec TestSpec() { return PascalPlatform().gpu; }

// ---------------------------------------------------------------- Device ---

TEST(DeviceTest, LaunchCoversAllThreadIds) {
  Device device(TestSpec(), 2);
  std::vector<std::atomic<int>> hits(1000);
  device.Launch("cover", 1000, [&](ThreadCtx& ctx) {
    hits[ctx.tid()].fetch_add(1);
    EXPECT_EQ(ctx.num_threads(), 1000u);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DeviceTest, CostAggregatesTotalAndMax) {
  Device device(TestSpec(), 1);
  KernelCost cost = device.Launch("work", 10, [&](ThreadCtx& ctx) {
    ctx.Charge(ctx.tid() == 3 ? 100 : 1);
  });
  EXPECT_EQ(cost.total_ops, 109u);
  EXPECT_EQ(cost.max_thread_ops, 100u);
  EXPECT_EQ(cost.num_threads, 10u);
}

TEST(DeviceTest, AtomicsChargeSeparately) {
  Device device(TestSpec(), 1);
  KernelCost cost = device.Launch("atomics", 4, [&](ThreadCtx& ctx) {
    ctx.ChargeAtomic(5);
  });
  EXPECT_EQ(cost.atomic_ops, 20u);
  EXPECT_EQ(cost.total_ops, 20u);  // atomics count as ops too
}

TEST(DeviceTest, ClockAdvancesWithWorkAndTransfers) {
  Device device(TestSpec(), 1);
  EXPECT_DOUBLE_EQ(device.SimSeconds(), 0.0);
  device.Launch("noop", 1, [](ThreadCtx&) {});
  const double after_launch = device.SimSeconds();
  EXPECT_GT(after_launch, 0.0);  // launch overhead
  device.CopyHostToDevice(12ull * 1000 * 1000 * 1000 / 8);  // ~1 s at 12 GB/s
  EXPECT_NEAR(device.SimSeconds() - after_launch, 0.125, 0.01);
  device.ResetClock();
  EXPECT_DOUBLE_EQ(device.SimSeconds(), 0.0);
}

TEST(DeviceTest, ImbalanceDominatesThroughput) {
  // One thread with W ops must cost ~W / thread_speed, not W / device_speed.
  Device device(TestSpec(), 1);
  device.Launch("skewed", 1024, [&](ThreadCtx& ctx) {
    if (ctx.tid() == 0) ctx.Charge(1000000);
  });
  const double expected = 1e6 / TestSpec().thread_ops_per_sec();
  EXPECT_GT(device.SimSeconds(), expected * 0.9);
}

TEST(DeviceTest, StatsAccumulate) {
  Device device(TestSpec(), 1);
  device.Launch("a", 2, [](ThreadCtx& ctx) { ctx.Charge(3); });
  device.Launch("b", 2, [](ThreadCtx& ctx) { ctx.ChargeAtomic(); });
  EXPECT_EQ(device.stats().kernels_launched, 2u);
  EXPECT_EQ(device.stats().total_ops, 8u);
  EXPECT_EQ(device.stats().total_atomics, 2u);
}

TEST(DeviceBufferTest, TracksDeviceBytes) {
  Device device(TestSpec(), 1);
  {
    DeviceBuffer<uint64_t> buf(&device, 1000, 7ull);
    EXPECT_EQ(device.device_bytes_in_use(), 8000u);
    EXPECT_EQ(buf[999], 7ull);
    DeviceBuffer<uint64_t> moved = std::move(buf);
    EXPECT_EQ(device.device_bytes_in_use(), 8000u);
    EXPECT_EQ(moved[0], 7ull);
  }
  EXPECT_EQ(device.device_bytes_in_use(), 0u);
  EXPECT_EQ(device.stats().peak_device_bytes, 8000u);
}

TEST(PlatformTest, PresetsAreOrderedSensibly) {
  auto pascal = PascalPlatform(), volta = VoltaPlatform(), turing = TuringPlatform();
  // V100 has the largest device throughput and memory bandwidth.
  EXPECT_GT(volta.gpu.device_ops_per_sec(), pascal.gpu.device_ops_per_sec());
  EXPECT_GT(volta.gpu.mem_bandwidth_gbps, turing.gpu.mem_bandwidth_gbps);
  EXPECT_EQ(AllPlatforms().size(), 3u);
  const auto cluster = TenNodeCluster();
  EXPECT_EQ(cluster.nodes, 10u);
  EXPECT_GT(cluster.node_cpu.socket_ops_per_sec(), 0.0);
}

// ------------------------------------------------------------ MemoryPool ---

TEST(MemoryPoolTest, PlanRegionsIsExclusiveScan) {
  Device device(TestSpec(), 1);
  MemoryPool pool(&device, 100);
  auto offsets = pool.PlanRegions({10, 0, 5, 20});
  ASSERT_TRUE(offsets.ok());
  EXPECT_EQ(*offsets, (std::vector<uint64_t>{0, 10, 10, 15}));
  EXPECT_EQ(pool.used(), 35u);
}

TEST(MemoryPoolTest, PlanRegionsOutOfMemory) {
  Device device(TestSpec(), 1);
  MemoryPool pool(&device, 10);
  EXPECT_TRUE(pool.PlanRegions({6, 6}).status().IsOutOfMemory());
  // A failed plan must not consume capacity.
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_TRUE(pool.PlanRegions({5, 5}).ok());
}

TEST(MemoryPoolTest, AtomicAllocAfterPlan) {
  Device device(TestSpec(), 1);
  MemoryPool pool(&device, 16);
  ASSERT_TRUE(pool.PlanRegions({4}).ok());
  ThreadCtx ctx(0, 1);
  EXPECT_EQ(pool.AtomicAlloc(ctx, 4), 4u);
  EXPECT_EQ(pool.AtomicAlloc(ctx, 8), 8u);
  EXPECT_EQ(pool.AtomicAlloc(ctx, 1), kPoolInvalid);  // exhausted
  EXPECT_EQ(pool.used(), 16u);
  pool.Reset();
  EXPECT_EQ(pool.used(), 0u);
}

TEST(MemoryPoolTest, ConcurrentAtomicAllocDisjoint) {
  Device device(TestSpec(), 4);
  MemoryPool pool(&device, 4096);
  std::vector<std::atomic<uint64_t>> got(512);
  device.Launch("alloc", 512, [&](ThreadCtx& ctx) {
    got[ctx.tid()].store(pool.AtomicAlloc(ctx, 8));
  });
  std::vector<uint64_t> offsets;
  for (auto& g : got) offsets.push_back(g.load());
  std::sort(offsets.begin(), offsets.end());
  for (size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], i * 8) << "overlapping regions";
  }
}

// ------------------------------------------------------------- HashTable ---

TEST(GpuHashTableTest, InsertAndLookup) {
  Device device(TestSpec(), 1);
  GpuHashTable table(&device, {.num_entries = 16, .max_nodes = 64});
  ThreadCtx ctx(0, 1);
  EXPECT_EQ(table.AddOrInsert(ctx, 100, 5), InsertOutcome::kDone);
  EXPECT_EQ(table.AddOrInsert(ctx, 100, 3), InsertOutcome::kDone);
  EXPECT_EQ(table.AddOrInsert(ctx, 200, 1), InsertOutcome::kDone);
  EXPECT_EQ(table.Lookup(100), 8u);
  EXPECT_EQ(table.Lookup(200), 1u);
  EXPECT_EQ(table.Lookup(300), 0u);
  EXPECT_EQ(table.num_nodes_used(), 2u);
}

TEST(GpuHashTableTest, ChainsSurviveCollisions) {
  Device device(TestSpec(), 1);
  // One bucket: every key collides.
  GpuHashTable table(&device, {.num_entries = 1, .max_nodes = 128});
  ThreadCtx ctx(0, 1);
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_EQ(table.AddOrInsert(ctx, k, k + 1), InsertOutcome::kDone);
  }
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(table.Lookup(k), k + 1);
  }
}

TEST(GpuHashTableTest, TableFullReported) {
  Device device(TestSpec(), 1);
  GpuHashTable table(&device, {.num_entries = 4, .max_nodes = 2});
  ThreadCtx ctx(0, 1);
  EXPECT_EQ(table.AddOrInsert(ctx, 1, 1), InsertOutcome::kDone);
  EXPECT_EQ(table.AddOrInsert(ctx, 2, 1), InsertOutcome::kDone);
  EXPECT_EQ(table.AddOrInsert(ctx, 3, 1), InsertOutcome::kTableFull);
  // Existing keys still update fine.
  EXPECT_EQ(table.AddOrInsert(ctx, 1, 1), InsertOutcome::kDone);
}

TEST(GpuHashTableTest, LockFailureInjectionForcesRetry) {
  Device device(TestSpec(), 1);
  GpuHashTable table(&device, {.num_entries = 8, .max_nodes = 8});
  table.InjectLockFailures(42, 2);
  ThreadCtx ctx(0, 1);
  EXPECT_EQ(table.AddOrInsert(ctx, 42, 1), InsertOutcome::kRetry);
  EXPECT_EQ(table.AddOrInsert(ctx, 42, 1), InsertOutcome::kRetry);
  EXPECT_EQ(table.AddOrInsert(ctx, 42, 1), InsertOutcome::kDone);
  EXPECT_EQ(table.Lookup(42), 1u);
}

class GpuHashTableLockModes : public testing::TestWithParam<LockMode> {};

TEST_P(GpuHashTableLockModes, ConcurrentSumsAreExact) {
  Device device(TestSpec(), 4);
  GpuHashTable table(&device,
                     {.num_entries = 64, .max_nodes = 4096, .lock_mode = GetParam()});
  // 64 distinct keys, 4096 increments spread over threads; retry via loop.
  const bool ok =
      RoundLoop(&device, "inserts", 4096, 16, [&](size_t i, ThreadCtx& ctx) {
        return table.AddOrInsert(ctx, i % 64, 1);
      });
  ASSERT_TRUE(ok);
  auto drained = table.Drain();
  ASSERT_EQ(drained.size(), 64u);
  uint64_t total = 0;
  for (const auto& [k, v] : drained) {
    EXPECT_EQ(v, 64u) << "key " << k;
    total += v;
  }
  EXPECT_EQ(total, 4096u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, GpuHashTableLockModes,
                         testing::Values(LockMode::kPerEntryTryLock,
                                         LockMode::kGlobalLock,
                                         LockMode::kAtomicOnly));

// ------------------------------------------------------------ NgramTable ---

TEST(GpuNgramTableTest, ExactKeysDistinguishPermutations) {
  Device device(TestSpec(), 1);
  GpuNgramTable table(&device,
                      {.num_entries = 16, .max_nodes = 64, .ngram_len = 3});
  ThreadCtx ctx(0, 1);
  const uint32_t abc[] = {1, 2, 3};
  const uint32_t acb[] = {1, 3, 2};
  EXPECT_EQ(table.AddOrInsert(ctx, 0, abc, 2), InsertOutcome::kDone);
  EXPECT_EQ(table.AddOrInsert(ctx, 0, acb, 5), InsertOutcome::kDone);
  EXPECT_EQ(table.AddOrInsert(ctx, 0, abc, 1), InsertOutcome::kDone);
  EXPECT_EQ(table.Lookup(0, abc), 3u);
  EXPECT_EQ(table.Lookup(0, acb), 5u);
  EXPECT_EQ(table.num_nodes_used(), 2u);
}

TEST(GpuNgramTableTest, FilesSeparateKeys) {
  Device device(TestSpec(), 1);
  GpuNgramTable table(&device,
                      {.num_entries = 16, .max_nodes = 64, .ngram_len = 2});
  ThreadCtx ctx(0, 1);
  const uint32_t ab[] = {7, 8};
  table.AddOrInsert(ctx, 0, ab, 1);
  table.AddOrInsert(ctx, 1, ab, 10);
  EXPECT_EQ(table.Lookup(0, ab), 1u);
  EXPECT_EQ(table.Lookup(1, ab), 10u);
  auto drained = table.Drain();
  EXPECT_EQ(drained.size(), 2u);
  for (const auto& nc : drained) {
    EXPECT_EQ(nc.words, (std::vector<uint32_t>{7, 8}));
  }
}

TEST(GpuNgramTableTest, TableFullAndDrainRoundTrip) {
  Device device(TestSpec(), 1);
  GpuNgramTable table(&device,
                      {.num_entries = 4, .max_nodes = 2, .ngram_len = 2});
  ThreadCtx ctx(0, 1);
  const uint32_t k1[] = {1, 1}, k2[] = {2, 2}, k3[] = {3, 3};
  EXPECT_EQ(table.AddOrInsert(ctx, 0, k1, 1), InsertOutcome::kDone);
  EXPECT_EQ(table.AddOrInsert(ctx, 0, k2, 1), InsertOutcome::kDone);
  EXPECT_EQ(table.AddOrInsert(ctx, 0, k3, 1), InsertOutcome::kTableFull);
}

// ------------------------------------------------------------ Primitives ---

TEST(ScanTest, MatchesHostPrefixSum) {
  Device device(TestSpec(), 2);
  Rng rng(5);
  for (size_t n : {0u, 1u, 7u, 256u, 1000u, 4096u}) {
    std::vector<uint64_t> in(n);
    for (auto& v : in) v = rng.Uniform(100);
    std::vector<uint64_t> out;
    const uint64_t total = DeviceExclusiveScan(&device, in, &out);
    uint64_t expect = 0;
    ASSERT_EQ(out.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], expect) << "n=" << n << " i=" << i;
      expect += in[i];
    }
    EXPECT_EQ(total, expect);
  }
}

TEST(SortTest, SortsRandomPairs) {
  Device device(TestSpec(), 2);
  Rng rng(17);
  for (size_t n : {0u, 1u, 2u, 3u, 100u, 1023u, 1024u, 5000u}) {
    std::vector<std::pair<uint64_t, uint64_t>> pairs(n);
    for (auto& p : pairs) p = {rng.Uniform(1000), rng.NextU64()};
    auto expect = pairs;
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    DeviceSortPairs(&device, &pairs);
    EXPECT_EQ(pairs, expect) << "n=" << n;
  }
}

TEST(SortTest, StableOnEqualKeys) {
  Device device(TestSpec(), 1);
  std::vector<std::pair<uint64_t, uint64_t>> pairs = {
      {5, 0}, {5, 1}, {1, 2}, {5, 3}, {1, 4}};
  DeviceSortPairs(&device, &pairs);
  EXPECT_EQ(pairs, (std::vector<std::pair<uint64_t, uint64_t>>{
                       {1, 2}, {1, 4}, {5, 0}, {5, 1}, {5, 3}}));
}

TEST(SortTest, AlreadySortedAndReverse) {
  Device device(TestSpec(), 1);
  std::vector<std::pair<uint64_t, uint64_t>> asc, desc;
  for (uint64_t i = 0; i < 500; ++i) {
    asc.emplace_back(i, i);
    desc.emplace_back(499 - i, i);
  }
  auto asc2 = asc;
  DeviceSortPairs(&device, &asc2);
  EXPECT_EQ(asc2, asc);
  DeviceSortPairs(&device, &desc);
  for (uint64_t i = 0; i < 500; ++i) EXPECT_EQ(desc[i].first, i);
}

// ------------------------------------------------------------- RoundLoop ---

TEST(RoundLoopTest, RetriesUntilDone) {
  Device device(TestSpec(), 1);
  std::vector<int> attempts(100, 0);
  const bool ok =
      RoundLoop(&device, "retry", 100, 10, [&](size_t i, ThreadCtx& ctx) {
        ctx.Charge(1);
        // Every item fails twice before succeeding.
        return ++attempts[i] < 3 ? InsertOutcome::kRetry : InsertOutcome::kDone;
      });
  EXPECT_TRUE(ok);
  for (int a : attempts) EXPECT_EQ(a, 3);
}

TEST(RoundLoopTest, TableFullAborts) {
  Device device(TestSpec(), 1);
  const bool ok = RoundLoop(&device, "full", 10, 4, [&](size_t i, ThreadCtx&) {
    return i == 5 ? InsertOutcome::kTableFull : InsertOutcome::kDone;
  });
  EXPECT_FALSE(ok);
}

TEST(RoundLoopTest, EmptyIsTriviallyDone) {
  Device device(TestSpec(), 1);
  EXPECT_TRUE(RoundLoop(&device, "empty", 0, 4, [&](size_t, ThreadCtx&) {
    return InsertOutcome::kDone;
  }));
}

// ------------------------------------------------------- SlotBudgetGroup ---

TEST(SlotBudgetGroupTest, AllOrNothingRollsBackOnMemberRefusal) {
  SlotBudget a(10);
  SlotBudget b(10);
  SlotBudgetGroup group({&a, &b});

  ASSERT_TRUE(group.TryReserve({2, 8}));
  EXPECT_EQ(group.in_use(), 10u);

  // Member 0 would fit (2+5 <= 10) but member 1 refuses (8+5 > 10): the
  // reservation must fail WITHOUT leaving member 0 partially held.
  EXPECT_FALSE(group.CanReserve({5, 5}));
  EXPECT_FALSE(group.TryReserve({5, 5}));
  EXPECT_EQ(a.in_use(), 2u);
  EXPECT_EQ(b.in_use(), 8u);
  EXPECT_EQ(group.in_use(), 10u);
  EXPECT_EQ(group.peak_in_use(), 10u);

  group.Release({2, 8});
  EXPECT_EQ(a.in_use(), 0u);
  EXPECT_EQ(b.in_use(), 0u);
  EXPECT_EQ(group.in_use(), 0u);
  EXPECT_TRUE(group.TryReserve({5, 5}));
}

TEST(SlotBudgetGroupTest, ZeroEntriesAndSizeMismatch) {
  SlotBudget a(4);
  SlotBudget b(4);
  SlotBudgetGroup group({&a, &b});

  // Zero entries reserve nothing on that member.
  ASSERT_TRUE(group.TryReserve({0, 3}));
  EXPECT_EQ(a.in_use(), 0u);
  EXPECT_EQ(b.in_use(), 3u);

  // A wrong-arity request is refused outright, no state change.
  EXPECT_FALSE(group.TryReserve({1}));
  EXPECT_FALSE(group.CanReserve({1, 1, 1}));
  EXPECT_EQ(group.in_use(), 3u);
}

TEST(SlotBudgetGroupTest, OwnerQuotaSpansShards) {
  SlotBudget a(100);
  SlotBudget b(100);
  SlotBudgetGroup group({&a, &b});
  group.SetOwnerQuota(1, 50);

  // 30 + 10 = 40 of 50: fits.
  ASSERT_TRUE(group.TryReserve({30, 10}, 1));
  // Each member individually has room, but the GROUP total (40 + 20 = 60)
  // exceeds the owner's cross-shard quota.
  EXPECT_FALSE(group.CanReserve({10, 10}, 1));
  EXPECT_FALSE(group.TryReserve({10, 10}, 1));
  EXPECT_EQ(group.owner_in_use(1), 40u);
  // Another owner is not bound by tenant 1's quota.
  EXPECT_TRUE(group.TryReserve({10, 10}, 2));

  // Per-device rolling release: freeing one member's share re-opens the
  // quota headroom.
  group.ReleaseOn(0, 30, 1);
  EXPECT_EQ(group.owner_in_use(1), 10u);
  EXPECT_TRUE(group.TryReserve({10, 10}, 1));
  EXPECT_EQ(group.owner_peak_in_use(1), 40u);
}

TEST(SlotBudgetGroupTest, NoDeadlockUnderInterleavedReservations) {
  // Two owners repeatedly grab opposite-skew reservations across the same
  // two budgets — the classic hold-and-wait shape. TryReserve never blocks
  // and acquires in index order with rollback, so this must always run to
  // completion with budgets never oversubscribed.
  SlotBudget a(10);
  SlotBudget b(10);
  SlotBudgetGroup group({&a, &b});

  std::atomic<uint64_t> successes{0};
  std::atomic<bool> overcommitted{false};
  auto worker = [&](std::vector<uint64_t> slots, uint64_t owner) {
    for (int i = 0; i < 20000; ++i) {
      if (group.TryReserve(slots, owner)) {
        if (a.in_use() > a.capacity() || b.in_use() > b.capacity()) {
          overcommitted = true;
        }
        ++successes;
        group.Release(slots, owner);
      }
    }
  };
  std::thread t1(worker, std::vector<uint64_t>{6, 4}, 1);
  std::thread t2(worker, std::vector<uint64_t>{4, 6}, 2);
  std::thread t3(worker, std::vector<uint64_t>{10, 10}, 3);
  t1.join();
  t2.join();
  t3.join();

  EXPECT_GT(successes.load(), 0u);
  EXPECT_FALSE(overcommitted.load());
  EXPECT_EQ(a.in_use(), 0u);
  EXPECT_EQ(b.in_use(), 0u);
  EXPECT_EQ(group.in_use(), 0u);
  EXPECT_LE(group.peak_in_use(), 20u);
}

TEST(SlotBudgetGroupTest, GroupDoesNotOwnDirectMemberTraffic) {
  // Budgets may also be reserved against directly; the group's capacity
  // checks see that usage (member TryReserve refuses) but its group-level
  // owner accounting does not.
  SlotBudget a(10);
  SlotBudget b(10);
  SlotBudgetGroup group({&a, &b});

  ASSERT_TRUE(a.TryReserve(7));
  EXPECT_FALSE(group.CanReserve({4, 4}));
  EXPECT_TRUE(group.TryReserve({3, 4}));
  EXPECT_EQ(group.in_use(), 7u);  // the direct 7 is not group traffic
  EXPECT_EQ(a.in_use(), 10u);
}

}  // namespace
}  // namespace gpu
}  // namespace gtadoc
