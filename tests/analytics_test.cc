#include <gtest/gtest.h>

#include "analytics/results.h"
#include "analytics/uncompressed.h"
#include "datagen/datagen.h"
#include "gpu/platform.h"

namespace gtadoc {
namespace {

/// Tiny corpus with hand-computable answers:
///   file0: a b a c    file1: b a b
/// ids: a=0 b=1 c=2
std::vector<std::vector<uint32_t>> TinyFiles() {
  return {{0, 1, 0, 2}, {1, 0, 1}};
}

TEST(TaskMetaTest, NamesAndClasses) {
  EXPECT_STREQ(TaskName(Task::kWordCount), "wordCount");
  EXPECT_STREQ(TaskName(Task::kRankedInvertedIndex), "rankedInvertedIndex");
  EXPECT_EQ(AllTasks().size(), 6u);
  EXPECT_FALSE(IsSequenceTask(Task::kSort));
  EXPECT_TRUE(IsSequenceTask(Task::kSequenceCount));
  EXPECT_TRUE(IsSequenceTask(Task::kRankedInvertedIndex));
}

TEST(UncompressedSequentialTest, WordCount) {
  auto files = TinyFiles();
  UncompressedAnalytics a(files);
  auto r = a.RunSequential(Task::kWordCount);
  EXPECT_EQ(r.word_count, (WordCountResult{{0, 3}, {1, 3}, {2, 1}}));
}

TEST(UncompressedSequentialTest, SortOrdersByCountThenId) {
  auto files = TinyFiles();
  UncompressedAnalytics a(files);
  auto r = a.RunSequential(Task::kSort);
  // a and b tie at 3 -> id ascending; c last.
  ASSERT_EQ(r.sort.size(), 3u);
  EXPECT_EQ(r.sort[0], (std::pair<uint32_t, uint64_t>{0, 3}));
  EXPECT_EQ(r.sort[1], (std::pair<uint32_t, uint64_t>{1, 3}));
  EXPECT_EQ(r.sort[2], (std::pair<uint32_t, uint64_t>{2, 1}));
}

TEST(UncompressedSequentialTest, InvertedIndex) {
  auto files = TinyFiles();
  UncompressedAnalytics a(files);
  auto r = a.RunSequential(Task::kInvertedIndex);
  EXPECT_EQ(r.inverted_index[0], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(r.inverted_index[1], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(r.inverted_index[2], (std::vector<uint32_t>{0}));
}

TEST(UncompressedSequentialTest, TermVector) {
  auto files = TinyFiles();
  UncompressedAnalytics a(files);
  auto r = a.RunSequential(Task::kTermVector);
  ASSERT_EQ(r.term_vector.size(), 2u);
  // file0: a:2, b:1, c:1 (count desc, id asc).
  EXPECT_EQ(r.term_vector[0],
            (std::vector<std::pair<uint32_t, uint64_t>>{{0, 2}, {1, 1}, {2, 1}}));
  EXPECT_EQ(r.term_vector[1],
            (std::vector<std::pair<uint32_t, uint64_t>>{{1, 2}, {0, 1}}));
}

TEST(UncompressedSequentialTest, SequenceCountL2) {
  auto files = TinyFiles();
  UncompressedAnalytics a(files, /*ngram_len=*/2);
  auto r = a.RunSequential(Task::kSequenceCount);
  // file0 bigrams: ab, ba, ac ; file1: ba, ab.
  EXPECT_EQ((r.sequence_count[{0, {0, 1}}]), 1u);
  EXPECT_EQ((r.sequence_count[{0, {1, 0}}]), 1u);
  EXPECT_EQ((r.sequence_count[{0, {0, 2}}]), 1u);
  EXPECT_EQ((r.sequence_count[{1, {1, 0}}]), 1u);
  EXPECT_EQ((r.sequence_count[{1, {0, 1}}]), 1u);
  EXPECT_EQ(r.sequence_count.size(), 5u);
}

TEST(UncompressedSequentialTest, SequenceSkipsShortFiles) {
  std::vector<std::vector<uint32_t>> files = {{1, 2}, {3}};
  UncompressedAnalytics a(files, 3);
  auto r = a.RunSequential(Task::kSequenceCount);
  EXPECT_TRUE(r.sequence_count.empty());
}

TEST(UncompressedSequentialTest, RankedInvertedIndexL2) {
  // ab occurs twice in file1, once in file0 -> file1 ranks first.
  std::vector<std::vector<uint32_t>> files = {{0, 1, 2}, {0, 1, 0, 1}};
  UncompressedAnalytics a(files, 2);
  auto r = a.RunSequential(Task::kRankedInvertedIndex);
  const auto& ab = r.ranked_inverted_index[{0, 1}];
  ASSERT_EQ(ab.size(), 2u);
  EXPECT_EQ(ab[0], (std::pair<uint32_t, uint64_t>{1, 2}));
  EXPECT_EQ(ab[1], (std::pair<uint32_t, uint64_t>{0, 1}));
}

TEST(UncompressedSequentialTest, MeterChargesWork) {
  auto files = TinyFiles();
  UncompressedAnalytics a(files);
  CpuCostMeter meter(gpu::PascalPlatform().cpu);
  a.RunSequential(Task::kWordCount, &meter);
  EXPECT_GT(meter.ops(), 0u);
  EXPECT_GT(meter.SequentialSeconds(), 0.0);
}

// ------------------------------------------------------ result utilities ---

TEST(ResultsTest, SameAsComparesSelectedMember) {
  AnalyticsResult a, b;
  a.task = b.task = Task::kWordCount;
  a.word_count = {{1, 2}};
  b.word_count = {{1, 2}};
  EXPECT_TRUE(a.SameAs(b));
  b.word_count[1] = 3;
  EXPECT_FALSE(a.SameAs(b));
  b.task = Task::kSort;
  EXPECT_FALSE(a.SameAs(b));
}

TEST(ResultsTest, CanonicalizeSortsInvertedIndexFiles) {
  AnalyticsResult r;
  r.task = Task::kInvertedIndex;
  r.inverted_index[5] = {3, 1, 2, 1};
  Canonicalize(&r);
  EXPECT_EQ(r.inverted_index[5], (std::vector<uint32_t>{1, 2, 3}));
}

TEST(ResultsTest, DigestDiffersForDifferentResults) {
  AnalyticsResult a, b;
  a.task = b.task = Task::kWordCount;
  a.word_count = {{1, 2}};
  b.word_count = {{1, 3}};
  EXPECT_NE(a.Digest(), b.Digest());
}

// --------------------------------------- GPU vs sequential ground truth ----

class UncompressedDeviceMatches
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UncompressedDeviceMatches, AllSeeds) {
  const auto [task_idx, seed] = GetParam();
  const Task task = AllTasks()[task_idx];

  DatasetSpec spec = DatasetD();
  spec.num_files = 5;
  spec.total_tokens = 3000;
  spec.vocabulary = 200;
  spec.seed = seed;
  TokenizedCorpus tokens = GenerateTokens(spec);

  UncompressedAnalytics a(tokens.file_tokens);
  AnalyticsResult truth = a.RunSequential(task);

  gpu::Device device(gpu::VoltaPlatform().gpu, 2);
  auto run = a.RunOnDevice(task, &device);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->result.SameAs(truth))
      << TaskName(task) << ": " << run->result.Digest() << " vs "
      << truth.Digest();
  EXPECT_GT(run->timing.traversal_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(TasksBySeeds, UncompressedDeviceMatches,
                         testing::Combine(testing::Range(0, 6),
                                          testing::Values(101, 202, 303)),
                         [](const auto& info) {
                           return std::string(TaskName(
                                      AllTasks()[std::get<0>(info.param)])) +
                                  "_" + std::to_string(std::get<1>(info.param));
                         });

TEST(UncompressedDeviceTest, EmptyInputRejected) {
  std::vector<std::vector<uint32_t>> files = {{}};
  UncompressedAnalytics a(files);
  gpu::Device device(gpu::PascalPlatform().gpu, 1);
  EXPECT_TRUE(a.RunOnDevice(Task::kWordCount, &device).status().IsInvalidArgument());
}

}  // namespace
}  // namespace gtadoc
