#include <gtest/gtest.h>

#include "analytics/uncompressed.h"
#include "datagen/datagen.h"
#include "format/dag.h"
#include "gpu/platform.h"
#include "gtadoc/engine.h"
#include "sequitur/compressor.h"
#include "tadoc/cpu_engine.h"

namespace gtadoc {
namespace {

GTadocEngine::Options GpuOpts() {
  GTadocEngine::Options opt;
  opt.gpu = gpu::PascalPlatform().gpu;
  opt.host_workers = 1;
  return opt;
}

CpuTadocOptions CpuOpts() {
  CpuTadocOptions opt;
  opt.cpu = gpu::PascalPlatform().cpu;
  return opt;
}

/// Runs all six tasks on `files` through CPU TADOC and G-TADOC, asserting
/// agreement with the uncompressed reference.
void ExpectAllEnginesAgree(const std::vector<std::vector<uint32_t>>& files,
                           uint32_t num_words, const char* label) {
  auto g = CompressTokenStreams(files, num_words);
  ASSERT_TRUE(g.ok()) << label << ": " << g.status().ToString();
  auto cpu = CpuTadocEngine::Create(&*g, CpuOpts());
  ASSERT_TRUE(cpu.ok()) << label;
  auto gpu_engine = GTadocEngine::Create(&*g, GpuOpts());
  ASSERT_TRUE(gpu_engine.ok()) << label;
  UncompressedAnalytics truth_engine(files);
  for (Task task : AllTasks()) {
    AnalyticsResult truth = truth_engine.RunSequential(task);
    auto cr = cpu->Run(task);
    ASSERT_TRUE(cr.ok()) << label << "/" << TaskName(task);
    EXPECT_TRUE(cr->result.SameAs(truth)) << label << " CPU " << TaskName(task);
    auto gr = (*gpu_engine)->Run(task);
    ASSERT_TRUE(gr.ok()) << label << "/" << TaskName(task);
    EXPECT_TRUE(gr->result.SameAs(truth)) << label << " GPU " << TaskName(task);
  }
}

TEST(EdgeCaseTest, SingleTokenCorpus) {
  ExpectAllEnginesAgree({{7}}, 8, "single token");
}

TEST(EdgeCaseTest, TwoTokenFile) {
  ExpectAllEnginesAgree({{1, 2}}, 3, "two tokens");
}

TEST(EdgeCaseTest, RunOfOneSymbol) {
  // "aaaa..." compresses into deeply nested doubling rules; sequence windows
  // are all identical and must still be attributed exactly once each.
  std::vector<uint32_t> run(64, 0);
  ExpectAllEnginesAgree({run}, 1, "aaa run");
}

TEST(EdgeCaseTest, AlternatingPair) {
  std::vector<uint32_t> ab;
  for (int i = 0; i < 50; ++i) {
    ab.push_back(0);
    ab.push_back(1);
  }
  ExpectAllEnginesAgree({ab}, 2, "abab run");
}

TEST(EdgeCaseTest, EmptyFileAmongFiles) {
  // Tokenizing a whitespace-only file yields zero tokens; the grammar still
  // records the boundary and every engine must keep file ids straight.
  ExpectAllEnginesAgree({{0, 1, 0, 1}, {}, {1, 0, 1, 0}}, 2, "empty middle");
  ExpectAllEnginesAgree({{0, 1, 2, 0, 1, 2}, {}}, 3, "empty last");
  ExpectAllEnginesAgree({{}, {0, 1, 0, 1, 2}}, 3, "empty first");
}

TEST(EdgeCaseTest, IdenticalFiles) {
  // Maximal cross-file sharing: one rule covers both files completely.
  std::vector<uint32_t> doc = {3, 1, 4, 1, 5, 9, 2, 6, 3, 1, 4, 1, 5, 9, 2, 6};
  ExpectAllEnginesAgree({doc, doc, doc}, 10, "identical files");
}

TEST(EdgeCaseTest, FileShorterThanNgram) {
  // Files shorter than l contribute no sequences but still count words.
  ExpectAllEnginesAgree({{0, 1}, {2}, {0, 1, 2, 0, 1, 2, 0}}, 3, "short files");
}

TEST(EdgeCaseTest, NoRepetitionAtAll) {
  // All-distinct tokens: Sequitur finds nothing; grammar is just the root.
  std::vector<uint32_t> distinct(40);
  for (uint32_t i = 0; i < 40; ++i) distinct[i] = i;
  auto g = CompressTokenStreams({distinct}, 40);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->rules.size(), 1u);
  ExpectAllEnginesAgree({distinct}, 40, "no repetition");
}

TEST(EdgeCaseTest, LargeNgramOnSmallRules) {
  // l = 6 with head/tail buffers of 5 words exceeds most rule expansions,
  // exercising the "complete expansion in the head buffer" path everywhere.
  DatasetSpec spec = DatasetD();
  spec.total_tokens = 2000;
  spec.seed = 99;
  TokenizedCorpus tokens = GenerateTokens(spec);
  auto g = CompressTokens(tokens);
  ASSERT_TRUE(g.ok());
  GTadocEngine::Options opt = GpuOpts();
  opt.ngram_len = 6;
  auto engine = GTadocEngine::Create(&*g, opt);
  ASSERT_TRUE(engine.ok());
  auto run = (*engine)->Run(Task::kSequenceCount);
  ASSERT_TRUE(run.ok());
  UncompressedAnalytics truth_engine(tokens.file_tokens, 6);
  EXPECT_TRUE(
      run->result.SameAs(truth_engine.RunSequential(Task::kSequenceCount)));
}

TEST(EdgeCaseTest, AllPresetsSmallScaleAllEngines) {
  // Cross-preset sweep at tiny scale: every dataset shape works end to end.
  for (const DatasetSpec& preset : AllDatasets()) {
    DatasetSpec spec = preset;
    spec.total_tokens = 1500;
    spec.num_files = std::min<uint32_t>(spec.num_files, 6);
    TokenizedCorpus tokens = GenerateTokens(spec);
    ExpectAllEnginesAgree(tokens.file_tokens,
                          static_cast<uint32_t>(tokens.words.size()),
                          spec.name.c_str());
  }
}

TEST(EdgeCaseTest, RepeatedRunsAreDeterministic) {
  DatasetSpec spec = DatasetD();
  spec.total_tokens = 1000;
  TokenizedCorpus tokens = GenerateTokens(spec);
  auto g = CompressTokens(tokens);
  ASSERT_TRUE(g.ok());
  auto engine = GTadocEngine::Create(&*g, GpuOpts());
  ASSERT_TRUE(engine.ok());
  auto r1 = (*engine)->Run(Task::kSequenceCount);
  auto r2 = (*engine)->Run(Task::kSequenceCount);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1->result.SameAs(r2->result));
  // Simulated timings are exactly reproducible for a deterministic engine.
  EXPECT_DOUBLE_EQ(r1->timing.traversal_seconds, r2->timing.traversal_seconds);
}

TEST(EdgeCaseTest, DeepNestingStressesMaskRounds) {
  // Fibonacci-style words make Sequitur produce a deep rule chain; the mask
  // protocol must take about depth-many rounds and still be exact.
  std::vector<uint32_t> fib = {0};
  std::vector<uint32_t> prev = {1};
  while (fib.size() < 600) {
    std::vector<uint32_t> next = fib;
    next.insert(next.end(), prev.begin(), prev.end());
    prev = fib;
    fib = next;
  }
  auto g = CompressTokenStreams({fib}, 2);
  ASSERT_TRUE(g.ok());
  auto dag = DagView::Build(*g);
  ASSERT_TRUE(dag.ok());
  EXPECT_GT(dag->max_depth(), 4u);
  ExpectAllEnginesAgree({fib}, 2, "fibonacci word");
}

}  // namespace
}  // namespace gtadoc
